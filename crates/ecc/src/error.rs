//! Error type for erasure-coding operations.

use std::fmt;

/// Errors returned by erasure-code construction, encoding, decoding and
/// repair planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The `(n, k)` parameters are invalid (e.g. `k >= n`, `n > 256`).
    InvalidParameters {
        /// Human-readable explanation of the violated constraint.
        reason: String,
    },
    /// Not enough available blocks to decode or repair.
    NotEnoughBlocks {
        /// Number of blocks required.
        needed: usize,
        /// Number of blocks available.
        available: usize,
    },
    /// A block index was out of range for this code.
    InvalidBlockIndex {
        /// The offending index.
        index: usize,
        /// The number of blocks per stripe (`n`).
        n: usize,
    },
    /// Input blocks had inconsistent or invalid sizes.
    InvalidBlockSize {
        /// Human-readable explanation.
        reason: String,
    },
    /// The decoding matrix was singular (should not happen for MDS codes and
    /// valid block selections).
    SingularMatrix,
    /// A repair plan was requested for a block set this code cannot repair
    /// (e.g. more failures than the code tolerates).
    Unrepairable {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { reason } => {
                write!(f, "invalid code parameters: {reason}")
            }
            CodeError::NotEnoughBlocks { needed, available } => write!(
                f,
                "not enough blocks: need {needed}, only {available} available"
            ),
            CodeError::InvalidBlockIndex { index, n } => {
                write!(f, "block index {index} out of range for n={n}")
            }
            CodeError::InvalidBlockSize { reason } => write!(f, "invalid block size: {reason}"),
            CodeError::SingularMatrix => write!(f, "decoding matrix is singular"),
            CodeError::Unrepairable { reason } => write!(f, "unrepairable failure set: {reason}"),
        }
    }
}

impl std::error::Error for CodeError {}
