//! The common erasure-code interface.

use crate::plan::{MultiRepairPlan, RepairPlan};
use crate::Result;

/// A systematic erasure code over blocks of bytes.
///
/// An `(n, k)` code turns `k` data blocks into `n` coded blocks (a *stripe*)
/// such that any `k` of the `n` blocks suffice to recover the original data
/// (§2.1). Implementations in this crate are systematic: coded blocks
/// `0..k` are the data blocks themselves.
pub trait ErasureCode: Send + Sync {
    /// Total number of blocks per stripe.
    fn n(&self) -> usize;

    /// Number of data blocks per stripe.
    fn k(&self) -> usize;

    /// A short human-readable name (e.g. `"RS(14,10)"`).
    fn name(&self) -> String;

    /// Encodes `k` data blocks into `n` coded blocks.
    ///
    /// All data blocks must have the same length. The returned vector has
    /// length `n`; the first `k` entries equal the inputs (systematic form).
    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>>;

    /// Decodes the original `k` data blocks from at least `k` available
    /// coded blocks, given as `(block_index, content)` pairs.
    fn decode(&self, available: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>>;

    /// Produces a linear single-block repair plan for `failed`, reading only
    /// blocks listed in `available` (stripe indices of intact blocks).
    ///
    /// For MDS codes this reads `k` helpers; repair-friendly codes (LRC) may
    /// read fewer.
    fn repair_plan(&self, failed: usize, available: &[usize]) -> Result<RepairPlan>;

    /// Produces a multi-block repair plan for all blocks in `failed`, using a
    /// shared set of helpers drawn from `available` (§4.4).
    fn multi_repair_plan(&self, failed: &[usize], available: &[usize]) -> Result<MultiRepairPlan>;

    /// The number of block failures this code always tolerates (`n - k` for
    /// MDS codes; LRC tolerates fewer worst-case arbitrary failures).
    fn fault_tolerance(&self) -> usize;
}
