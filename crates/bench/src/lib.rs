//! Shared helpers for the figure-reproduction binaries.
//!
//! Each binary in `src/bin` regenerates one figure family of the paper's
//! evaluation (Figures 8-11 plus the Algorithm 2 search-time comparison) by
//! building the corresponding repair schedules and timing them on the
//! `simnet` simulator. The helpers here set up the paper's default testbed
//! (16 storage nodes plus a requestor on 1 Gb/s links, 64 MiB blocks,
//! 32 KiB slices, (14,10) RS codes) and print the series in a uniform
//! tabular format so the output can be compared against the paper's plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecc::slice::SliceLayout;
use repair::{Scheme, SingleRepairJob};
use simnet::{CostModel, Simulator, Topology};

/// One mebibyte.
pub const MIB: usize = 1024 * 1024;
/// One kibibyte.
pub const KIB: usize = 1024;

/// The paper's default block size (64 MiB).
pub const DEFAULT_BLOCK: usize = 64 * MIB;
/// The paper's default slice size (32 KiB).
pub const DEFAULT_SLICE: usize = 32 * KIB;
/// The paper's default coding parameters (Facebook's (14,10)).
pub const DEFAULT_NK: (usize, usize) = (14, 10);

/// The local-cluster simulator of §6.1: 16 helpers + coordinator + requestor
/// machines on a 1 Gb/s switch, with the measured disk/CPU/request overheads.
pub fn local_cluster(bandwidth: f64) -> Simulator {
    Simulator::new(
        Topology::flat(18, bandwidth),
        CostModel::paper_local_cluster(),
    )
}

/// A single-block repair job on the local cluster: helpers are nodes
/// `1..=k`, the requestor is node 0.
pub fn single_job(k: usize, block_size: usize, slice_size: usize) -> SingleRepairJob {
    SingleRepairJob::new(
        (1..=k).collect(),
        0,
        SliceLayout::new(block_size, slice_size),
    )
}

/// Runs one single-block repair under a scheme and returns the repair time in
/// seconds.
pub fn single_repair_time(
    sim: &Simulator,
    scheme: Scheme,
    k: usize,
    block_size: usize,
    slice_size: usize,
) -> f64 {
    let job = single_job(k, block_size, slice_size);
    sim.run(&scheme.schedule(&job)).makespan
}

/// The time to directly send one block over one link of the given simulator
/// (the "direct send" baseline of Figure 8(a), i.e. the normal read time for
/// a single available block). The disk read is streamed slice by slice so it
/// overlaps with the transfer, as a normal read does.
pub fn direct_send_time(sim: &Simulator, block_size: usize) -> f64 {
    let layout = SliceLayout::new(block_size, DEFAULT_SLICE);
    let mut schedule = simnet::Schedule::new();
    for j in 0..layout.slice_count() {
        let len = layout.slice_len(j) as u64;
        let read = schedule.disk_read(1, len, &[]);
        schedule.transfer(1, 0, len, &[read]);
    }
    sim.run(&schedule).makespan
}

pub mod results;

/// Prints a figure header.
pub fn header(figure: &str, description: &str) {
    println!("================================================================");
    println!("{figure}: {description}");
    println!("================================================================");
}

/// Prints one series row: an x value and `(label, value)` pairs. Labels are
/// anything `Display` — `&str`, or scheme/strategy enums directly.
pub fn row(x: &str, values: &[(impl std::fmt::Display, f64)]) {
    print!("{x:>16}");
    for (label, value) in values {
        print!("  {label}={value:<10.3}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::GBIT;

    #[test]
    fn direct_send_matches_wire_time() {
        let sim = local_cluster(GBIT);
        let t = direct_send_time(&sim, DEFAULT_BLOCK);
        // 64 MiB over 1 Gb/s is ~0.54 s; disk read overlaps are charged too,
        // so allow some slack.
        assert!(t > 0.5 && t < 1.0, "direct send {t}");
    }

    #[test]
    fn default_job_matches_paper_parameters() {
        let job = single_job(10, DEFAULT_BLOCK, DEFAULT_SLICE);
        assert_eq!(job.k(), 10);
        assert_eq!(job.slice_count(), 2048);
    }

    #[test]
    fn rp_close_to_direct_send_on_default_setup() {
        let sim = local_cluster(GBIT);
        let rp = single_repair_time(
            &sim,
            Scheme::RepairPipelining,
            10,
            DEFAULT_BLOCK,
            DEFAULT_SLICE,
        );
        let direct = direct_send_time(&sim, DEFAULT_BLOCK);
        // §6.1: the repair-pipelining time is only ~8.8% above direct send.
        assert!(rp < 1.25 * direct, "rp {rp} direct {direct}");
    }
}
