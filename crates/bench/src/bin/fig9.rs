//! Figure 9: evaluation on the geo-distributed Amazon EC2 clusters (§6.2).
//!
//! Two clusters (North America and Asia) of 16 helpers each — four per
//! region — seeded with the paper's Table 1 bandwidth measurements. A
//! degraded read is issued from a requestor hosted in each region and the
//! single-block repair time is reported for PPR, repair pipelining with a
//! random path, and repair pipelining with the optimal path of Algorithm 2.
//! Run with `cargo run --release -p ecpipe-bench --bin fig9`.

use ecc::slice::SliceLayout;
use ecpipe_bench::*;
use repair::{ppr, rp, weighted_path, SingleRepairJob};
use simnet::geo;
use simnet::{CostModel, Simulator, Topology};

fn main() {
    run_cluster(
        "North America",
        geo::north_america(4),
        &geo::NORTH_AMERICA_REGIONS,
    );
    run_cluster("Asia", geo::asia(4), &geo::ASIA_REGIONS);
}

fn run_cluster(name: &str, base: Topology, regions: &[&str; 4]) {
    header(
        &format!("Figure 9 ({name})"),
        "single-block repair time (s) vs requestor region ((16,12), 64 MiB, 32 KiB slices)",
    );
    let layout = SliceLayout::new(DEFAULT_BLOCK, DEFAULT_SLICE);

    for (region_index, region_name) in regions.iter().enumerate() {
        // Bandwidth fluctuates between runs (§6.2); average over a few seeds.
        let runs = 5u64;
        let mut ppr_total = 0.0;
        let mut rp_total = 0.0;
        let mut opt_total = 0.0;
        for seed in 0..runs {
            let topo = geo::with_fluctuation(&base, 0.2, seed * 7 + region_index as u64);
            let sim = Simulator::new(topo.clone(), CostModel::ec2_t2_micro());
            // The requestor is the first instance of the region; the stripe's
            // 16 blocks sit on the 16 instances, so the failed block is the
            // requestor's own block and the other 15 nodes are candidates.
            let requestor = region_index * 4;
            let candidates: Vec<usize> = (0..16).filter(|&n| n != requestor).collect();

            // Random (index-ordered) path over the first k candidates.
            let random_path: Vec<usize> = candidates.iter().copied().take(12).collect();
            let job = SingleRepairJob::new(random_path, requestor, layout);
            ppr_total += sim.run(&ppr::schedule(&job)).makespan;
            rp_total += sim.run(&rp::schedule(&job)).makespan;

            // Optimal path via Algorithm 2 on the measured link weights.
            let selection = weighted_path::optimal_path(&topo, requestor, &candidates, 12)
                .expect("enough candidates for (16,12)");
            let opt_job = SingleRepairJob::new(selection.path, requestor, layout);
            opt_total += sim.run(&rp::schedule(&opt_job)).makespan;
        }
        row(
            region_name,
            &[
                ("PPR", ppr_total / runs as f64),
                ("RP", rp_total / runs as f64),
                ("RP+optimal", opt_total / runs as f64),
            ],
        );
    }
    println!();
}
