//! Figure 8: evaluation on the local cluster (§6.1).
//!
//! Regenerates every sub-figure: repair time versus slice size, block size
//! and coding parameters; repair-friendly codes; full-node recovery rate;
//! multi-block repair; limited edge bandwidth; rack awareness; and varying
//! network bandwidth. Run with `cargo run --release -p ecpipe-bench --bin
//! fig8`.

use ecc::slice::SliceLayout;
use ecc::{ErasureCode, Lrc, RotatedRs};
use ecpipe_bench::*;
use repair::fullnode::{self, AffectedStripe, HelperSelection};
use repair::{
    conventional, cyclic, multiblock, ppr, rack_aware, rp, MultiRepairJob, Scheme, SingleRepairJob,
};
use simnet::{CostModel, Simulator, Topology, GBIT, MBIT};

fn main() {
    fig8a_slice_size();
    fig8b_block_size();
    fig8c_coding_parameters();
    fig8d_repair_friendly_codes();
    fig8e_full_node_recovery();
    fig8f_multi_block_repair();
    fig8g_limited_edge_bandwidth();
    fig8h_rack_awareness();
    fig8i_varying_network_bandwidth();
}

/// Figure 8(a): single-block repair time versus slice size, (14,10), 64 MiB.
fn fig8a_slice_size() {
    header(
        "Figure 8(a)",
        "single-block repair time vs slice size ((14,10), 64 MiB block, 1 Gb/s)",
    );
    let sim = local_cluster(GBIT);
    let direct = direct_send_time(&sim, DEFAULT_BLOCK);
    for slice_kib in [1, 2, 4, 8, 16, 32, 64, 128, 256] {
        let slice = slice_kib * KIB;
        let conv = single_repair_time(&sim, Scheme::Conventional, 10, DEFAULT_BLOCK, slice);
        let ppr_t = single_repair_time(&sim, Scheme::Ppr, 10, DEFAULT_BLOCK, slice);
        let rp_t = single_repair_time(&sim, Scheme::RepairPipelining, 10, DEFAULT_BLOCK, slice);
        row(
            &format!("{slice_kib} KiB"),
            &[
                ("Conv.", conv),
                ("PPR", ppr_t),
                ("RP", rp_t),
                ("DirectSend", direct),
            ],
        );
    }
    println!();
}

/// Figure 8(b): single-block repair time versus block size, 32 KiB slices.
fn fig8b_block_size() {
    header(
        "Figure 8(b)",
        "single-block repair time vs block size ((14,10), 32 KiB slices)",
    );
    let sim = local_cluster(GBIT);
    for block_mib in [8, 16, 32, 64, 128] {
        let block = block_mib * MIB;
        let conv = single_repair_time(&sim, Scheme::Conventional, 10, block, DEFAULT_SLICE);
        let ppr_t = single_repair_time(&sim, Scheme::Ppr, 10, block, DEFAULT_SLICE);
        let rp_t = single_repair_time(&sim, Scheme::RepairPipelining, 10, block, DEFAULT_SLICE);
        row(
            &format!("{block_mib} MiB"),
            &[("Conv.", conv), ("PPR", ppr_t), ("RP", rp_t)],
        );
    }
    println!();
}

/// Figure 8(c): single-block repair time versus (n, k).
fn fig8c_coding_parameters() {
    header(
        "Figure 8(c)",
        "single-block repair time vs (n,k) (64 MiB block, 32 KiB slices)",
    );
    let sim = local_cluster(GBIT);
    for (n, k) in [(9, 6), (12, 8), (14, 10), (16, 12)] {
        let conv = single_repair_time(&sim, Scheme::Conventional, k, DEFAULT_BLOCK, DEFAULT_SLICE);
        let ppr_t = single_repair_time(&sim, Scheme::Ppr, k, DEFAULT_BLOCK, DEFAULT_SLICE);
        let rp_t = single_repair_time(
            &sim,
            Scheme::RepairPipelining,
            k,
            DEFAULT_BLOCK,
            DEFAULT_SLICE,
        );
        row(
            &format!("({n},{k})"),
            &[("Conv.", conv), ("PPR", ppr_t), ("RP", rp_t)],
        );
    }
    println!();
}

/// Figure 8(d): repair-friendly codes (LRC and Rotated RS), normalised to
/// conventional repair of (16,12) RS.
fn fig8d_repair_friendly_codes() {
    header(
        "Figure 8(d)",
        "repair-friendly codes, repair time normalised to Conv. of (16,12) RS",
    );
    let sim = local_cluster(GBIT);
    let baseline = single_repair_time(&sim, Scheme::Conventional, 12, DEFAULT_BLOCK, DEFAULT_SLICE);

    // LRC(12,2,2): a data-block repair reads its local group of 6 blocks.
    let lrc = Lrc::new(12, 2, 2).expect("valid LRC parameters");
    let available: Vec<usize> = (1..lrc.n()).collect();
    let lrc_helpers = lrc
        .repair_plan(0, &available)
        .expect("LRC repair plan")
        .helper_count();
    // Rotated RS (16,12): nine blocks read on average (§6.1).
    let rrs = RotatedRs::new(16, 12, 4).expect("valid Rotated RS parameters");
    let rrs_helpers = rrs.average_repair_blocks();

    let mut results: Vec<(String, f64)> = Vec::new();
    for (label, helpers) in [("LRC", lrc_helpers), ("RRS", rrs_helpers)] {
        let conv = single_repair_time(
            &sim,
            Scheme::Conventional,
            helpers,
            DEFAULT_BLOCK,
            DEFAULT_SLICE,
        );
        let ppr_t = single_repair_time(&sim, Scheme::Ppr, helpers, DEFAULT_BLOCK, DEFAULT_SLICE);
        let rp_t = single_repair_time(
            &sim,
            Scheme::RepairPipelining,
            helpers,
            DEFAULT_BLOCK,
            DEFAULT_SLICE,
        );
        results.push((label.to_string(), conv / baseline));
        results.push((format!("{label}+PPR"), ppr_t / baseline));
        results.push((format!("{label}+RP"), rp_t / baseline));
    }
    for (label, value) in results {
        row(&label, &[("normalised", value)]);
    }
    println!();
}

/// Figure 8(e): full-node recovery rate versus the number of requestors.
fn fig8e_full_node_recovery() {
    header(
        "Figure 8(e)",
        "full-node recovery rate (MiB/s) vs number of requestors (64 stripes, (14,10))",
    );
    let sim = local_cluster(GBIT);
    // 64 stripes, one lost block each; the 13 surviving blocks of each stripe
    // sit on a pseudo-random subset of the 16 helper nodes (the paper writes
    // the stripes randomly across all helpers), so the "smallest index"
    // helper selection is visibly skewed and greedy scheduling has room to
    // balance it.
    let stripes: Vec<AffectedStripe> = {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2017);
        (0..64)
            .map(|_| {
                let mut nodes: Vec<usize> = (1..=16).collect();
                nodes.shuffle(&mut rng);
                nodes.truncate(13);
                AffectedStripe {
                    available_nodes: nodes,
                }
            })
            .collect()
    };
    // The paper's 64 MiB blocks, but scheduled at 1 MiB slice granularity so
    // the combined 64-stripe schedule stays tractable; the recovery-rate
    // comparison is unaffected (the (k-1)/s term is already negligible).
    let layout = SliceLayout::new(64 * MIB, MIB);
    let sim_big = Simulator::new(Topology::flat(40, GBIT), *sim.cost());

    for requestor_count in [1usize, 2, 4, 8, 16] {
        let requestors: Vec<usize> = (20..20 + requestor_count).collect();
        let rate = |selection: HelperSelection,
                    scheme: fn(&SingleRepairJob) -> simnet::Schedule| {
            let jobs = fullnode::plan_recovery(&stripes, 10, &requestors, layout, selection)
                .expect("figure scenario always has enough helpers");
            let schedule = fullnode::build_recovery_schedule(&jobs, scheme);
            let report = sim_big.run(&schedule);
            fullnode::recovery_rate(&jobs, report.makespan) / MIB as f64
        };
        let conv = rate(HelperSelection::LowestIndex, conventional::schedule);
        let ppr_rate = rate(HelperSelection::LowestIndex, ppr::schedule);
        let rp_rate = rate(HelperSelection::LowestIndex, rp::schedule);
        let rp_sched = rate(HelperSelection::Greedy, rp::schedule);
        row(
            &format!("{requestor_count} requestors"),
            &[
                ("Conv.", conv),
                ("PPR", ppr_rate),
                ("RP", rp_rate),
                ("RP+scheduling", rp_sched),
            ],
        );
    }
    println!();
}

/// Figure 8(f): multi-block repair time versus the number of failed blocks.
fn fig8f_multi_block_repair() {
    header(
        "Figure 8(f)",
        "multi-block repair time vs number of failures ((14,10), 64 MiB)",
    );
    let sim = Simulator::new(Topology::flat(40, GBIT), CostModel::paper_local_cluster());
    let layout = SliceLayout::new(DEFAULT_BLOCK, DEFAULT_SLICE);
    for f in 1..=4usize {
        let job = MultiRepairJob::new((1..=10).collect(), (20..20 + f).collect(), layout);
        let conv = sim.run(&multiblock::schedule_conventional(&job)).makespan;
        let rp_t = sim.run(&multiblock::schedule_rp(&job)).makespan;
        row(&format!("f={f}"), &[("Conv.", conv), ("RP", rp_t)]);
    }
    println!();
}

/// Figure 8(g): basic versus cyclic repair pipelining under a limited edge
/// bandwidth between the storage system and the requestor.
fn fig8g_limited_edge_bandwidth() {
    header(
        "Figure 8(g)",
        "repair time vs edge bandwidth ((14,10), 64 MiB): basic vs cyclic RP",
    );
    let layout = SliceLayout::new(DEFAULT_BLOCK, DEFAULT_SLICE);
    for edge_mbps in [1000.0, 500.0, 200.0, 100.0] {
        let mut topo = Topology::flat(18, GBIT);
        topo.limit_ingress(0, edge_mbps * MBIT);
        let sim = Simulator::new(topo, CostModel::paper_local_cluster());
        let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
        let basic = sim.run(&rp::schedule(&job)).makespan;
        let cyc = sim.run(&cyclic::schedule(&job)).makespan;
        row(
            &format!("{edge_mbps} Mb/s"),
            &[("Basic", basic), ("Cyclic", cyc)],
        );
    }
    println!();
}

/// Figure 8(h): rack-aware repair pipelining, (9,6) RS over three racks.
fn fig8h_rack_awareness() {
    header(
        "Figure 8(h)",
        "repair time vs cross-rack bandwidth ((9,6), 3 racks, 3 blocks per rack)",
    );
    let layout = SliceLayout::new(DEFAULT_BLOCK, DEFAULT_SLICE);
    for cross_mbps in [400.0, 800.0] {
        let topo = Topology::rack_based(&[3, 3, 3], GBIT, cross_mbps * MBIT);
        let sim = Simulator::new(topo.clone(), CostModel::paper_local_cluster());
        // The failed block lived on node 0; the requestor is node 1 (same
        // rack); candidates are the other seven block holders.
        let requestor = 1;
        let candidates: Vec<usize> = (2..9).collect();

        let conv_job = SingleRepairJob::new(candidates[..6].to_vec(), requestor, layout);
        let conv = sim.run(&conventional::schedule(&conv_job)).makespan;

        // Rack-oblivious path: a typical random helper order that enters one
        // rack twice.
        let oblivious = vec![3, 6, 7, 4, 5, 2];
        let rp_job = SingleRepairJob::new(oblivious, requestor, layout);
        let rp_plain = sim.run(&rp::schedule(&rp_job)).makespan;

        // Rack-aware path from Algorithm 1.
        let aware_path = rack_aware::select_path(&topo, requestor, &candidates, 6);
        let aware_job = SingleRepairJob::new(aware_path, requestor, layout);
        let rp_aware = sim.run(&rp::schedule(&aware_job)).makespan;

        row(
            &format!("{cross_mbps} Mb/s"),
            &[
                ("Conv.", conv),
                ("RP", rp_plain),
                ("RP+rackaware", rp_aware),
            ],
        );
    }
    println!();
}

/// Figure 8(i): single-block repair time versus the available network
/// bandwidth (1-10 Gb/s), where compute and disk overheads become visible.
fn fig8i_varying_network_bandwidth() {
    header(
        "Figure 8(i)",
        "single-block repair time vs network bandwidth ((14,10), 64 MiB)",
    );
    for gbps in [1.0, 2.0, 5.0, 10.0] {
        let sim = Simulator::new(
            Topology::flat(18, gbps * GBIT),
            CostModel::paper_local_cluster(),
        );
        let conv = single_repair_time(&sim, Scheme::Conventional, 10, DEFAULT_BLOCK, DEFAULT_SLICE);
        let ppr_t = single_repair_time(&sim, Scheme::Ppr, 10, DEFAULT_BLOCK, DEFAULT_SLICE);
        let rp_t = single_repair_time(
            &sim,
            Scheme::RepairPipelining,
            10,
            DEFAULT_BLOCK,
            DEFAULT_SLICE,
        );
        row(
            &format!("{gbps} Gb/s"),
            &[("Conv.", conv), ("PPR", ppr_t), ("RP", rp_t)],
        );
    }
    println!();
}
