//! Search-time comparison for weighted path selection (§4.3).
//!
//! The paper reports that for (14,10) codes, brute-force search over all
//! helper orderings takes 27 s on average, while Algorithm 2 finds the same
//! optimal path in 0.9 ms. This binary measures both on random link-weight
//! matrices. The full (14,10) brute force enumerates `13!/3!` permutations;
//! by default it is measured on smaller instances (where it is already
//! thousands of times slower) and only run at full size with `--full`.
//!
//! Run with `cargo run --release -p ecpipe-bench --bin alg2_search [--full]`.

use std::time::Instant;

use ecpipe_bench::header;
use rand::prelude::*;
use repair::weighted_path::{brute_force_path, optimal_path, WeightMatrix};

fn random_weights(n: usize, seed: u64) -> WeightMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightMatrix::new(n, (0..n * n).map(|_| rng.gen_range(0.001..1.0)).collect())
}

fn measure<F: FnMut() -> f64>(runs: usize, mut f: F) -> (f64, f64) {
    let start = Instant::now();
    let mut checksum = 0.0;
    for _ in 0..runs {
        checksum += f();
    }
    (start.elapsed().as_secs_f64() / runs as f64, checksum)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    header(
        "Algorithm 2 search time",
        "optimal weighted path selection vs brute force (average per search)",
    );

    // Algorithm 2 at the paper's full scale: n = 14, k = 10, 13 candidates.
    let runs = 1000;
    let (alg2_time, _) = measure(runs, || {
        let weights = random_weights(14, rand::random::<u64>());
        let candidates: Vec<usize> = (1..14).collect();
        optimal_path(&weights, 0, &candidates, 10)
            .expect("path exists")
            .bottleneck_weight
    });
    println!("{:>22}  {:.3} ms", "(14,10) Algorithm 2", alg2_time * 1e3);

    // Brute force at increasing sizes (it grows factorially).
    for (n, k, runs) in [(8usize, 4usize, 50usize), (9, 5, 20), (10, 6, 5)] {
        let (bf_time, _) = measure(runs, || {
            let weights = random_weights(n, rand::random::<u64>());
            let candidates: Vec<usize> = (1..n).collect();
            brute_force_path(&weights, 0, &candidates, k)
                .expect("path exists")
                .bottleneck_weight
        });
        let (fast_time, _) = measure(runs.max(100), || {
            let weights = random_weights(n, rand::random::<u64>());
            let candidates: Vec<usize> = (1..n).collect();
            optimal_path(&weights, 0, &candidates, k)
                .expect("path exists")
                .bottleneck_weight
        });
        println!(
            "{:>22}  brute force {:.3} ms   Algorithm 2 {:.3} ms   speedup {:.0}x",
            format!("({n},{k})"),
            bf_time * 1e3,
            fast_time * 1e3,
            bf_time / fast_time
        );
    }

    if full {
        println!("running the full (14,10) brute force; this takes tens of seconds ...");
        let (bf_time, _) = measure(1, || {
            let weights = random_weights(14, 42);
            let candidates: Vec<usize> = (1..14).collect();
            brute_force_path(&weights, 0, &candidates, 10)
                .expect("path exists")
                .bottleneck_weight
        });
        println!("{:>22}  {:.1} s", "(14,10) brute force", bf_time);
    } else {
        println!("(pass --full to also time the full (14,10) brute-force search)");
    }
}
