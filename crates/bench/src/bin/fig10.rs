//! Figure 10: ECPipe integrated into HDFS-RAID, HDFS-3 and QFS (§6.3).
//!
//! Compares each system's original repair implementation against
//! conventional repair and repair pipelining executed under ECPipe.
//! Run with `cargo run --release -p ecpipe-bench --bin fig10`.

use dfs::timing::{full_node_recovery_rate, single_block_repair_time, RepairVariant};
use dfs::SystemProfile;
use ecc::slice::SliceLayout;
use ecpipe_bench::*;

const VARIANTS: [RepairVariant; 3] = [
    RepairVariant::Original,
    RepairVariant::ConventionalEcPipe,
    RepairVariant::RepairPipeliningEcPipe,
];

fn main() {
    fig10a_hdfs_raid();
    fig10b_hdfs3();
    fig10c_qfs_slice_size();
    fig10d_qfs_block_size();
}

/// Figure 10(a): HDFS-RAID single-block repair time versus (n, k).
fn fig10a_hdfs_raid() {
    header(
        "Figure 10(a)",
        "HDFS-RAID single-block repair time (s) vs (n,k) (64 MiB block, 32 KiB slices)",
    );
    let profile = SystemProfile::hdfs_raid();
    let layout = SliceLayout::new(DEFAULT_BLOCK, DEFAULT_SLICE);
    for (n, k) in [(9, 6), (12, 8), (14, 10), (16, 12)] {
        let values: Vec<(RepairVariant, f64)> = VARIANTS
            .iter()
            .map(|&v| (v, single_block_repair_time(&profile, k, layout, v)))
            .collect();
        row(&format!("({n},{k})"), &values);
    }
    println!();
}

/// Figure 10(b): HDFS-3 full-node recovery rate versus (n, k).
fn fig10b_hdfs3() {
    header(
        "Figure 10(b)",
        "HDFS-3 full-node recovery rate (MiB/s) vs (n,k) (64 stripes, single replacement node)",
    );
    let profile = SystemProfile::hdfs3();
    // Scaled-down blocks keep the combined 64-stripe schedule tractable; the
    // comparison between variants is what the figure reports.
    let layout = SliceLayout::new(8 * MIB, 128 * KIB);
    for (n, k) in [(9, 6), (12, 8), (14, 10), (16, 12)] {
        let values: Vec<(RepairVariant, f64)> = VARIANTS
            .iter()
            .map(|&v| {
                (
                    v,
                    full_node_recovery_rate(&profile, n, k, layout, 64, v) / MIB as f64,
                )
            })
            .collect();
        row(&format!("({n},{k})"), &values);
    }
    println!();
}

/// Figure 10(c): QFS single-block repair time versus slice size.
fn fig10c_qfs_slice_size() {
    header(
        "Figure 10(c)",
        "QFS single-block repair time (s) vs slice size ((9,6), 64 MiB block)",
    );
    let profile = SystemProfile::qfs();
    for slice_kib in [1, 2, 4, 8, 16, 32, 64, 128, 256] {
        let layout = SliceLayout::new(DEFAULT_BLOCK, slice_kib * KIB);
        let values: Vec<(RepairVariant, f64)> = VARIANTS
            .iter()
            .map(|&v| (v, single_block_repair_time(&profile, 6, layout, v)))
            .collect();
        row(&format!("{slice_kib} KiB"), &values);
    }
    println!();
}

/// Figure 10(d): QFS single-block repair time versus block size.
fn fig10d_qfs_block_size() {
    header(
        "Figure 10(d)",
        "QFS single-block repair time (s) vs block size ((9,6), 32 KiB slices)",
    );
    let profile = SystemProfile::qfs();
    for block_mib in [8, 16, 32, 64] {
        let layout = SliceLayout::new(block_mib * MIB, DEFAULT_SLICE);
        let values: Vec<(RepairVariant, f64)> = VARIANTS
            .iter()
            .map(|&v| (v, single_block_repair_time(&profile, 6, layout, v)))
            .collect();
        row(&format!("{block_mib} MiB"), &values);
    }
    println!();
}
