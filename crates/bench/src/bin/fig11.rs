//! Figure 11: comparison of repair pipelining implementations (§6.4).
//!
//! (a) Single-block repair time of the block-level (`Pipe-B`), serialised
//!     slice-level (`Pipe-S`) and fully parallelised (`RP`) implementations.
//! (b) Full-node recovery rate of the PUSH-style block-level implementations
//!     (`Pipe-Rep`, `Pipe-Sur`) versus repair pipelining with a single
//!     replacement node (`RP-single`) and with the reconstructed blocks
//!     spread over all nodes (`RP-all`).
//!
//! Run with `cargo run --release -p ecpipe-bench --bin fig11`.

use ecc::slice::SliceLayout;
use ecpipe_bench::*;
use repair::fullnode::{self, AffectedStripe, HelperSelection};
use repair::{rp, SingleRepairJob};
use simnet::{CostModel, Schedule, Simulator, TaskId, Topology, GBIT};

fn main() {
    fig11a_single_block_implementations();
    fig11b_recovery_implementations();
}

/// Figure 11(a): single-block repair time versus block size for Pipe-B,
/// Pipe-S and RP ((14,10), 32 KiB slices).
fn fig11a_single_block_implementations() {
    header(
        "Figure 11(a)",
        "single-block repair time (s) vs block size: Pipe-B / Pipe-S / RP ((14,10))",
    );
    let sim = local_cluster(GBIT);
    for block_mib in [8, 16, 32, 64] {
        let layout = SliceLayout::new(block_mib * MIB, DEFAULT_SLICE);
        let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
        let pipe_b = sim.run(&rp::schedule_pipe_b(&job)).makespan;
        let pipe_s = sim.run(&rp::schedule_pipe_s(&job)).makespan;
        let rp_t = sim.run(&rp::schedule(&job)).makespan;
        row(
            &format!("{block_mib} MiB"),
            &[("Pipe-B", pipe_b), ("Pipe-S", pipe_s), ("RP", rp_t)],
        );
    }
    println!();
}

/// PUSH-style recovery: block-level pipelining per stripe, with each helper's
/// single-threaded loop handling one block at a time (it does not accept the
/// next stripe's block until it has forwarded the current one).
fn push_recovery_schedule(jobs: &[SingleRepairJob]) -> Schedule {
    let mut s = Schedule::new();
    // Last outgoing transfer of each node, used to serialise its loop.
    let mut last_out: std::collections::HashMap<usize, TaskId> = std::collections::HashMap::new();
    for job in jobs {
        let block = job.layout.block_size as u64;
        let mut incoming: Option<TaskId> = None;
        let path: Vec<usize> = job
            .helpers
            .iter()
            .copied()
            .chain(std::iter::once(job.requestor))
            .collect();
        for w in path.windows(2) {
            let (src, dst) = (w[0], w[1]);
            let read = s.disk_read(src, block, &[]);
            let mut deps = vec![read];
            if let Some(inc) = incoming {
                deps.push(inc);
            }
            if let Some(&prev) = last_out.get(&src) {
                deps.push(prev);
            }
            let combine = s.compute(src, block, &deps);
            let t = s.transfer(src, dst, block, &[combine]);
            last_out.insert(src, t);
            incoming = Some(t);
        }
    }
    s
}

/// Figure 11(b): full-node recovery rate versus block size. A fixed 1 GiB of
/// lost data is recovered (the paper uses 4 TiB; the ratio between the
/// schemes is what the figure reports).
fn fig11b_recovery_implementations() {
    header(
        "Figure 11(b)",
        "full-node recovery rate (MiB/s) vs block size: Pipe-Rep / Pipe-Sur / RP-single / RP-all",
    );
    let total_bytes = 1024 * MIB;
    let sim = Simulator::new(Topology::flat(40, GBIT), CostModel::paper_local_cluster());
    for block_mib in [1usize, 4, 16, 64] {
        let block = block_mib * MIB;
        let stripes = total_bytes / block;
        let affected: Vec<AffectedStripe> = (0..stripes)
            .map(|i| AffectedStripe {
                available_nodes: (0..13).map(|j| 1 + (i + j) % 16).collect(),
            })
            .collect();
        let layout = SliceLayout::new(block, DEFAULT_SLICE.min(block));
        let single_requestor = vec![20usize];
        let all_requestors: Vec<usize> = (1..=16).collect();

        let rate = |requestors: &[usize], slice_level: bool, greedy: bool| -> f64 {
            let jobs = fullnode::plan_recovery(
                &affected,
                10,
                requestors,
                layout,
                if greedy {
                    HelperSelection::Greedy
                } else {
                    HelperSelection::LowestIndex
                },
            )
            .expect("figure scenario always has enough helpers");
            let schedule = if slice_level {
                fullnode::build_recovery_schedule(&jobs, rp::schedule)
            } else {
                push_recovery_schedule(&jobs)
            };
            let report = sim.run(&schedule);
            fullnode::recovery_rate(&jobs, report.makespan) / MIB as f64
        };

        let pipe_rep = rate(&single_requestor, false, false);
        let pipe_sur = rate(&all_requestors, false, false);
        let rp_single = rate(&single_requestor, true, true);
        let rp_all = rate(&all_requestors, true, true);
        row(
            &format!("{block_mib} MiB"),
            &[
                ("Pipe-Rep", pipe_rep),
                ("Pipe-Sur", pipe_sur),
                ("RP-single", rp_single),
                ("RP-all", rp_all),
            ],
        );
    }
    println!();
}
