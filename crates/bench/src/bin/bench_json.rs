//! Turns a `BENCH_RESULTS_LOG` file into the `BENCH_results.json` artifact.
//!
//! ```sh
//! BENCH_SMOKE=1 BENCH_RESULTS_LOG=bench-log.tsv cargo bench -p ecpipe-bench \
//!     --bench gf_kernels --bench runtime_exec
//! cargo run -p ecpipe-bench --bin bench_json -- bench-log.tsv BENCH_results.json
//! ```
//!
//! Exits non-zero (failing the CI job) if the log is missing, empty or
//! malformed, or if the output cannot be written — a benchmark pipeline
//! that cannot produce numbers must not pretend it did.

use ecpipe_bench::results::{parse_log, render_json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (log_path, out_path) = match &args[1..] {
        [log, out] => (log.clone(), out.clone()),
        _ => {
            eprintln!("usage: bench_json <bench-results-log> <output-json>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&log_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_json: cannot read {log_path}: {e}");
            std::process::exit(1);
        }
    };
    let records = match parse_log(&text) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("bench_json: malformed bench log {log_path}: {e}");
            std::process::exit(1);
        }
    };
    let json = render_json(&records);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_json: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "bench_json: wrote {} benchmark result(s) to {out_path}",
        records.len()
    );
}
