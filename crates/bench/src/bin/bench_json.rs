//! Turns a `BENCH_RESULTS_LOG` file into the `BENCH_results.json` artifact,
//! optionally gating on the committed baseline.
//!
//! ```sh
//! BENCH_SMOKE=1 BENCH_RESULTS_LOG=bench-log.tsv cargo bench -p ecpipe-bench \
//!     --bench gf_kernels --bench runtime_exec
//! cargo run -p ecpipe-bench --bin loadgen --  # appends percentile records
//! cargo run -p ecpipe-bench --bin bench_json -- bench-log.tsv BENCH_results.json \
//!     --compare BENCH_baseline.json --tolerance 0.5 --tolerance-p99 2.0
//! ```
//!
//! With `--compare`, every metric tracked by the baseline — the median,
//! plus p50/p99/p999 for records that carry them — must appear in this run
//! and stay within `1 + tolerance` of its recorded value, or the process
//! exits non-zero (failing the CI job) after printing the per-metric table.
//! `--tolerance` sets the median gate (and the p50 gate, unless
//! `--tolerance-p50` overrides it); the tail gates default wider — see
//! `Tolerances` in `ecpipe_bench::results` and `docs/BENCHMARKS.md` for the
//! baseline-refresh procedure.
//!
//! Also exits non-zero if the log is missing, empty or malformed, or if
//! the output cannot be written — a benchmark pipeline that cannot produce
//! numbers must not pretend it did.

use ecpipe_bench::results::{compare, parse_log, parse_results_json, render_json, Tolerances};

fn fail(msg: String) -> ! {
    eprintln!("bench_json: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut baseline_path: Option<String> = None;
    let mut tolerances = Tolerances::default();
    let mut p50_overridden = false;
    let mut it = args.into_iter();
    let tolerance_value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> f64 {
        it.next()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v >= 0.0)
            .unwrap_or_else(|| fail(format!("{flag} requires a non-negative number")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare" => match it.next() {
                Some(path) => baseline_path = Some(path),
                None => fail("--compare requires a baseline path".to_string()),
            },
            "--tolerance" => {
                tolerances.median = tolerance_value(&mut it, "--tolerance");
                // The p50 of a latency distribution is as stable as a
                // median-of-iterations, so it follows the median gate
                // unless explicitly overridden.
                if !p50_overridden {
                    tolerances.p50 = tolerances.median;
                }
            }
            "--tolerance-p50" => {
                tolerances.p50 = tolerance_value(&mut it, "--tolerance-p50");
                p50_overridden = true;
            }
            "--tolerance-p99" => tolerances.p99 = tolerance_value(&mut it, "--tolerance-p99"),
            "--tolerance-p999" => tolerances.p999 = tolerance_value(&mut it, "--tolerance-p999"),
            _ => positional.push(arg),
        }
    }
    let [log_path, out_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_json <bench-results-log> <output-json> \
             [--compare <baseline-json>] [--tolerance <fraction>] \
             [--tolerance-p50 <fraction>] [--tolerance-p99 <fraction>] \
             [--tolerance-p999 <fraction>]"
        );
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(log_path)
        .unwrap_or_else(|e| fail(format!("cannot read {log_path}: {e}")));
    let records =
        parse_log(&text).unwrap_or_else(|e| fail(format!("malformed bench log {log_path}: {e}")));
    let json = render_json(&records);
    std::fs::write(out_path, &json)
        .unwrap_or_else(|e| fail(format!("cannot write {out_path}: {e}")));
    println!(
        "bench_json: wrote {} benchmark result(s) to {out_path}",
        records.len()
    );

    if let Some(baseline_path) = baseline_path {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(format!("cannot read baseline {baseline_path}: {e}")));
        let baseline = parse_results_json(&baseline_text)
            .unwrap_or_else(|e| fail(format!("malformed baseline {baseline_path}: {e}")));
        let cmp = compare(&baseline, &records, tolerances);
        print!("{}", cmp.render());
        if cmp.passed() {
            println!(
                "bench_json: {} tracked metric(s) within tolerance of baseline \
                 (median {:.0}%, p50 {:.0}%, p99 {:.0}%, p999 {:.0}%)",
                cmp.entries.len(),
                tolerances.median * 100.0,
                tolerances.p50 * 100.0,
                tolerances.p99 * 100.0,
                tolerances.p999 * 100.0
            );
        } else {
            fail(format!(
                "{} regression(s), {} missing tracked metric(s) vs {baseline_path} \
                 — see docs/BENCHMARKS.md for the refresh procedure",
                cmp.regressions().len(),
                cmp.missing.len(),
            ));
        }
    }
}
