//! Turns a `BENCH_RESULTS_LOG` file into the `BENCH_results.json` artifact,
//! optionally gating on the committed baseline.
//!
//! ```sh
//! BENCH_SMOKE=1 BENCH_RESULTS_LOG=bench-log.tsv cargo bench -p ecpipe-bench \
//!     --bench gf_kernels --bench runtime_exec
//! cargo run -p ecpipe-bench --bin bench_json -- bench-log.tsv BENCH_results.json \
//!     --compare BENCH_baseline.json --tolerance 0.5
//! ```
//!
//! With `--compare`, every benchmark tracked by the baseline must appear in
//! this run and stay within `1 + tolerance` of its recorded median, or the
//! process exits non-zero (failing the CI job) after printing the
//! per-benchmark table. See `docs/BENCHMARKS.md` for the baseline-refresh
//! procedure.
//!
//! Also exits non-zero if the log is missing, empty or malformed, or if
//! the output cannot be written — a benchmark pipeline that cannot produce
//! numbers must not pretend it did.

use ecpipe_bench::results::{compare, parse_log, parse_results_json, render_json};

/// Default allowed fractional slowdown. Smoke-mode medians come from a
/// handful of samples on shared runners, so the gate only trips on integer-
/// factor regressions, not scheduling noise.
const DEFAULT_TOLERANCE: f64 = 0.5;

fn fail(msg: String) -> ! {
    eprintln!("bench_json: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut baseline_path: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare" => match it.next() {
                Some(path) => baseline_path = Some(path),
                None => fail("--compare requires a baseline path".to_string()),
            },
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .unwrap_or_else(|| {
                        fail("--tolerance requires a non-negative number".to_string())
                    });
            }
            _ => positional.push(arg),
        }
    }
    let [log_path, out_path] = positional.as_slice() else {
        eprintln!(
            "usage: bench_json <bench-results-log> <output-json> \
             [--compare <baseline-json>] [--tolerance <fraction>]"
        );
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(log_path)
        .unwrap_or_else(|e| fail(format!("cannot read {log_path}: {e}")));
    let records =
        parse_log(&text).unwrap_or_else(|e| fail(format!("malformed bench log {log_path}: {e}")));
    let json = render_json(&records);
    std::fs::write(out_path, &json)
        .unwrap_or_else(|e| fail(format!("cannot write {out_path}: {e}")));
    println!(
        "bench_json: wrote {} benchmark result(s) to {out_path}",
        records.len()
    );

    if let Some(baseline_path) = baseline_path {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| fail(format!("cannot read baseline {baseline_path}: {e}")));
        let baseline = parse_results_json(&baseline_text)
            .unwrap_or_else(|e| fail(format!("malformed baseline {baseline_path}: {e}")));
        let cmp = compare(&baseline, &records, tolerance);
        print!("{}", cmp.render());
        if cmp.passed() {
            println!(
                "bench_json: {} tracked benchmark(s) within {:.0}% of baseline",
                cmp.entries.len(),
                tolerance * 100.0
            );
        } else {
            fail(format!(
                "{} regression(s), {} missing tracked benchmark(s) vs {baseline_path} \
                 (tolerance {:.0}%) — see docs/BENCHMARKS.md for the refresh procedure",
                cmp.regressions().len(),
                cmp.missing.len(),
                tolerance * 100.0
            ));
        }
    }
}
