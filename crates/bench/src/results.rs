//! The benchmark-results pipeline behind CI's `BENCH_results.json` artifact.
//!
//! `cargo bench` run with `BENCH_RESULTS_LOG=<path>` (see the criterion
//! shim) appends one tab-separated record per benchmark:
//!
//! ```text
//! name \t ns_per_iter \t bytes_per_sec \t elements_per_sec
//! ```
//!
//! where the two throughput fields are `-` when the bench has no such
//! annotation. The load harness appends *extended* records with three more
//! columns carrying tail latencies:
//!
//! ```text
//! name \t ns_per_iter \t bytes_per_sec \t elements_per_sec \t p50 \t p99 \t p999
//! ```
//!
//! [`parse_log`] validates that log strictly — a malformed line is an
//! error, not a skip, so CI fails loudly instead of uploading a silently
//! truncated artifact — and [`render_json`] turns the records into the JSON
//! document the `bench_json` binary writes:
//!
//! ```json
//! {
//!   "benchmarks": [
//!     {"name": "gf_kernels/mul_slice/32768", "ns_per_iter": 1234.5,
//!      "bytes_per_sec": 26543210.9},
//!     {"name": "load_harness/get", "ns_per_iter": 81000.0,
//!      "elements_per_sec": 1950.0, "p50_ns": 64000.0, "p99_ns": 410000.0,
//!      "p999_ns": 1900000.0}
//!   ]
//! }
//! ```
//!
//! Comparison against the committed baseline gates each metric with its own
//! tolerance (see [`Tolerances`]): medians are stable even in smoke mode,
//! p99 and especially p999 come from far fewer effective samples and get
//! proportionally wider gates.

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`group/function/param`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration (for the load harness:
    /// mean latency).
    pub ns_per_iter: f64,
    /// Throughput, when the bench declared `Throughput::Bytes`.
    pub bytes_per_sec: Option<f64>,
    /// Throughput, when the bench declared `Throughput::Elements`.
    pub elements_per_sec: Option<f64>,
    /// Median latency in nanoseconds, when the record carries percentiles.
    pub p50_ns: Option<f64>,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: Option<f64>,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: Option<f64>,
}

fn parse_optional(field: &str, line_no: usize, what: &str) -> Result<Option<f64>, String> {
    if field == "-" {
        return Ok(None);
    }
    field
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(Some)
        .ok_or_else(|| format!("line {line_no}: bad {what} field {field:?}"))
}

/// Parses a `BENCH_RESULTS_LOG` file. Blank lines are ignored; any other
/// deviation from the four-field (or seven-field, with percentiles) record
/// format is an error.
pub fn parse_log(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 && fields.len() != 7 {
            return Err(format!(
                "line {line_no}: expected 4 or 7 tab-separated fields, got {}",
                fields.len()
            ));
        }
        if fields[0].is_empty() {
            return Err(format!("line {line_no}: empty benchmark name"));
        }
        if !seen.insert(fields[0].to_string()) {
            return Err(format!(
                "line {line_no}: duplicate benchmark name {:?} — \
                 stale log appended across runs? delete it and re-run",
                fields[0]
            ));
        }
        let ns_per_iter = fields[1]
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("line {line_no}: bad ns_per_iter field {:?}", fields[1]))?;
        let percentile = |idx: usize, what: &str| -> Result<Option<f64>, String> {
            match fields.get(idx) {
                Some(f) => parse_optional(f, line_no, what),
                None => Ok(None),
            }
        };
        records.push(BenchRecord {
            name: fields[0].to_string(),
            ns_per_iter,
            bytes_per_sec: parse_optional(fields[2], line_no, "bytes_per_sec")?,
            elements_per_sec: parse_optional(fields[3], line_no, "elements_per_sec")?,
            p50_ns: percentile(4, "p50_ns")?,
            p99_ns: percentile(5, "p99_ns")?,
            p999_ns: percentile(6, "p999_ns")?,
        });
    }
    if records.is_empty() {
        return Err("no benchmark records found".to_string());
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(records)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the records as the `BENCH_results.json` document (stable field
/// order, sorted by name upstream in [`parse_log`]).
pub fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.3}",
            escape_json(&r.name),
            r.ns_per_iter
        ));
        for (key, value) in [
            ("bytes_per_sec", r.bytes_per_sec),
            ("elements_per_sec", r.elements_per_sec),
            ("p50_ns", r.p50_ns),
            ("p99_ns", r.p99_ns),
            ("p999_ns", r.p999_ns),
        ] {
            if let Some(v) = value {
                out.push_str(&format!(", \"{key}\": {v:.3}"));
            }
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn unescape_json(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in {s:?}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad \\u escape in {s:?}"))?);
            }
            other => return Err(format!("bad escape {other:?} in {s:?}")),
        }
    }
    Ok(out)
}

/// Parses a `BENCH_results.json` / `BENCH_baseline.json` document back into
/// records. This is not a general JSON parser — it accepts exactly the
/// stable one-record-per-line shape [`render_json`] emits (which is also
/// what reviewers diff in the committed baseline), and errors on anything
/// else rather than guessing.
pub fn parse_results_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    fn field(tail: &str, key: &str) -> Option<String> {
        let tagged = format!("\"{key}\": ");
        let start = tail.find(&tagged)? + tagged.len();
        let rest = &tail[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    }

    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let entry = line.trim_end_matches(',');
        const NAME_TAG: &str = "\"name\": \"";
        let name_start = entry
            .find(NAME_TAG)
            .ok_or_else(|| format!("unparseable results entry: {line}"))?
            + NAME_TAG.len();
        let after_name = &entry[name_start..];
        // Find the name's closing quote, skipping escaped ones; everything
        // after it is numeric fields, so `field` can split on , and }.
        let name_len = {
            let mut backslashes = 0usize;
            after_name
                .char_indices()
                .find_map(|(i, c)| match c {
                    '\\' => {
                        backslashes += 1;
                        None
                    }
                    '"' if backslashes.is_multiple_of(2) => Some(i),
                    _ => {
                        backslashes = 0;
                        None
                    }
                })
                .ok_or_else(|| format!("unterminated name in entry: {line}"))?
        };
        let name = unescape_json(&after_name[..name_len])?;
        let tail = &after_name[name_len + 1..];
        let ns_per_iter = field(tail, "ns_per_iter")
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("entry {name:?}: missing or bad ns_per_iter"))?;
        let parse_opt = |key: &str| field(tail, key).and_then(|v| v.parse::<f64>().ok());
        records.push(BenchRecord {
            name,
            ns_per_iter,
            bytes_per_sec: parse_opt("bytes_per_sec"),
            elements_per_sec: parse_opt("elements_per_sec"),
            p50_ns: parse_opt("p50_ns"),
            p99_ns: parse_opt("p99_ns"),
            p999_ns: parse_opt("p999_ns"),
        });
    }
    if records.is_empty() {
        return Err("no benchmark entries found in results JSON".to_string());
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(records)
}

/// Which of a record's latency metrics a comparison entry tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `ns_per_iter` — the bench median (or harness mean).
    Median,
    /// `p50_ns`.
    P50,
    /// `p99_ns`.
    P99,
    /// `p999_ns`.
    P999,
}

impl Metric {
    /// Label used in comparison tables and missing-metric reports.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Median => "median",
            Metric::P50 => "p50",
            Metric::P99 => "p99",
            Metric::P999 => "p999",
        }
    }
}

/// Per-metric allowed fractional slowdown.
///
/// The defaults widen toward the tail: medians are stable even from a few
/// smoke samples, p99 of a seconds-long run rests on ~1% of the samples,
/// and p999 on ~0.1% — gating those as tightly as the median would make the
/// job fail on scheduler noise, gating them not at all would let real tail
/// regressions ship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Gate on `ns_per_iter` (`0.5` = fail beyond 1.5× baseline).
    pub median: f64,
    /// Gate on `p50_ns`.
    pub p50: f64,
    /// Gate on `p99_ns`.
    pub p99: f64,
    /// Gate on `p999_ns`.
    pub p999: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            median: 0.5,
            p50: 0.5,
            p99: 2.0,
            p999: 4.0,
        }
    }
}

impl Tolerances {
    /// The tolerance applied to `metric`.
    pub fn for_metric(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Median => self.median,
            Metric::P50 => self.p50,
            Metric::P99 => self.p99,
            Metric::P999 => self.p999,
        }
    }
}

/// One tracked metric's baseline-vs-current values.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonEntry {
    /// Benchmark name (`group/function/param`).
    pub name: String,
    /// Which metric of that benchmark this entry tracks.
    pub metric: Metric,
    /// Value recorded in the committed baseline, nanoseconds.
    pub baseline_ns: f64,
    /// Value measured by this run, nanoseconds.
    pub current_ns: f64,
}

impl ComparisonEntry {
    /// `current / baseline`: 1.0 is unchanged, above 1.0 is slower.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// The result of comparing a run against the committed baseline.
///
/// Every metric *in the baseline* is tracked: the benchmark must be present
/// in the current run, must still report every percentile the baseline
/// recorded, and each metric must stay within its tolerance. Benchmarks
/// (and percentiles) the current run adds are fine — they become tracked
/// when the baseline is refreshed (see `docs/BENCHMARKS.md`).
#[derive(Debug)]
pub struct Comparison {
    /// One entry per tracked metric present in both sets.
    pub entries: Vec<ComparisonEntry>,
    /// Tracked benchmarks (or `name [metric]` percentile columns) the
    /// current run did not produce — a fail: a deleted bench or dropped
    /// percentile silently un-tracks a number the gate was protecting.
    pub missing: Vec<String>,
    /// The per-metric gates applied.
    pub tolerances: Tolerances,
}

impl Comparison {
    /// Tracked metrics that regressed beyond their tolerance.
    pub fn regressions(&self) -> Vec<&ComparisonEntry> {
        self.entries
            .iter()
            .filter(|e| e.ratio() > 1.0 + self.tolerances.for_metric(e.metric))
            .collect()
    }

    /// Whether the gate passes: nothing missing, nothing regressed.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }

    /// A human-readable per-metric table for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let tolerance = self.tolerances.for_metric(e.metric);
            let verdict = if e.ratio() > 1.0 + tolerance {
                "REGRESSED"
            } else {
                "ok"
            };
            let tracked = match e.metric {
                Metric::Median => e.name.clone(),
                metric => format!("{} [{}]", e.name, metric.label()),
            };
            out.push_str(&format!(
                "{tracked:<50} {:>12.1} -> {:>12.1} ns  ({:>5.2}x, tol {:.0}%)  {verdict}\n",
                e.baseline_ns,
                e.current_ns,
                e.ratio(),
                tolerance * 100.0
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<50} MISSING from this run\n"));
        }
        out
    }
}

/// Compares current records against the committed baseline, gating each
/// metric the baseline tracks with its [`Tolerances`] entry.
pub fn compare(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    tolerances: Tolerances,
) -> Comparison {
    let current_by_name: std::collections::HashMap<&str, &BenchRecord> =
        current.iter().map(|r| (r.name.as_str(), r)).collect();
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for b in baseline {
        let Some(c) = current_by_name.get(b.name.as_str()) else {
            missing.push(b.name.clone());
            continue;
        };
        entries.push(ComparisonEntry {
            name: b.name.clone(),
            metric: Metric::Median,
            baseline_ns: b.ns_per_iter,
            current_ns: c.ns_per_iter,
        });
        for (metric, base, cur) in [
            (Metric::P50, b.p50_ns, c.p50_ns),
            (Metric::P99, b.p99_ns, c.p99_ns),
            (Metric::P999, b.p999_ns, c.p999_ns),
        ] {
            match (base, cur) {
                (Some(baseline_ns), Some(current_ns)) => entries.push(ComparisonEntry {
                    name: b.name.clone(),
                    metric,
                    baseline_ns,
                    current_ns,
                }),
                (Some(_), None) => missing.push(format!("{} [{}]", b.name, metric.label())),
                (None, _) => {}
            }
        }
    }
    Comparison {
        entries,
        missing,
        tolerances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sorts_valid_log() {
        let log = "b/two\t200.5\t-\t50.25\n\na/one\t100.123\t1048576.5\t-\n";
        let records = parse_log(log).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "a/one");
        assert_eq!(records[0].bytes_per_sec, Some(1048576.5));
        assert_eq!(records[0].elements_per_sec, None);
        assert_eq!(records[0].p50_ns, None);
        assert_eq!(records[1].name, "b/two");
        assert_eq!(records[1].elements_per_sec, Some(50.25));
    }

    #[test]
    fn parses_extended_percentile_records() {
        let log = "load_harness/get\t81000.0\t-\t1950.0\t64000\t410000\t1900000\n\
                   gf/mul\t100.0\t1024.0\t-\n";
        let records = parse_log(log).unwrap();
        let harness = records.iter().find(|r| r.name.starts_with("load")).unwrap();
        assert_eq!(harness.p50_ns, Some(64000.0));
        assert_eq!(harness.p99_ns, Some(410000.0));
        assert_eq!(harness.p999_ns, Some(1900000.0));
        let plain = records.iter().find(|r| r.name.starts_with("gf")).unwrap();
        assert_eq!(plain.p50_ns, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_log("").is_err());
        assert!(parse_log("only three\tfields\there\n").is_err());
        assert!(parse_log("name\tnot_a_number\t-\t-\n").is_err());
        assert!(parse_log("name\t-5.0\t-\t-\n").is_err());
        assert!(parse_log("name\t10.0\tNaN\t-\n").is_err());
        assert!(parse_log("\t10.0\t-\t-\n").is_err());
        // Five or six fields are neither format.
        assert!(parse_log("name\t10.0\t-\t-\t100\n").is_err());
        assert!(parse_log("name\t10.0\t-\t-\t100\t200\n").is_err());
        // Bad percentile in an extended record.
        assert!(parse_log("name\t10.0\t-\t-\tnope\t200\t300\n").is_err());
        assert!(parse_log("name\t10.0\t-\t-\t100\t-0.5\t300\n").is_err());
    }

    #[test]
    fn rejects_duplicate_names_from_stale_appended_logs() {
        let twice = "a/one\t100.0\t-\t-\na/one\t120.0\t-\t-\n";
        let err = parse_log(twice).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn renders_machine_readable_json() {
        let records = parse_log("g/f/64\t1500.0\t42666666.667\t-\n").unwrap();
        let json = render_json(&records);
        assert!(json.contains("\"name\": \"g/f/64\""));
        assert!(json.contains("\"ns_per_iter\": 1500.000"));
        assert!(json.contains("\"bytes_per_sec\": 42666666.667"));
        assert!(!json.contains("elements_per_sec"));
        assert!(!json.contains("p50_ns"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_exotic_names() {
        let records = vec![BenchRecord {
            name: "weird\"name\\with\tcontrol".to_string(),
            ns_per_iter: 1.0,
            bytes_per_sec: None,
            elements_per_sec: None,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
        }];
        let json = render_json(&records);
        assert!(json.contains("weird\\\"name\\\\with\\u0009control"));
    }

    #[test]
    fn results_json_roundtrips_through_the_parser() {
        let records = parse_log(
            "g/mul/32768\t1500.5\t42666666.667\t-\n\
             exec/repair\t900000.0\t-\t12.5\n\
             load_harness/overall\t81000.0\t-\t1950.0\t64000\t410000\t1900000\n\
             weird\"name\t10.0\t-\t-\n",
        )
        .unwrap();
        let parsed = parse_results_json(&render_json(&records)).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed, records);
    }

    #[test]
    fn results_json_parser_rejects_garbage() {
        assert!(parse_results_json("").is_err());
        assert!(parse_results_json("{\n  \"benchmarks\": []\n}\n").is_err());
        assert!(parse_results_json("    {\"name\": \"x\", \"ns_per_iter\": -3.0},\n").is_err());
        assert!(parse_results_json("    {\"name\": \"x\"},\n").is_err());
    }

    fn rec(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            ns_per_iter: ns,
            bytes_per_sec: None,
            elements_per_sec: None,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
        }
    }

    fn rec_pct(name: &str, ns: f64, p50: f64, p99: f64, p999: f64) -> BenchRecord {
        BenchRecord {
            p50_ns: Some(p50),
            p99_ns: Some(p99),
            p999_ns: Some(p999),
            ..rec(name, ns)
        }
    }

    #[test]
    fn compare_passes_within_tolerance_and_ignores_new_benches() {
        let baseline = vec![rec("a", 100.0), rec("b", 1000.0)];
        let current = vec![rec("a", 140.0), rec("b", 900.0), rec("brand_new", 5.0)];
        let cmp = compare(&baseline, &current, Tolerances::default());
        assert!(cmp.passed(), "{}", cmp.render());
        assert_eq!(cmp.entries.len(), 2);
        assert!(cmp.missing.is_empty());
    }

    #[test]
    fn compare_fails_on_regression_beyond_tolerance() {
        let baseline = vec![rec("a", 100.0), rec("b", 1000.0)];
        let current = vec![rec("a", 151.0), rec("b", 1000.0)];
        let cmp = compare(&baseline, &current, Tolerances::default());
        assert!(!cmp.passed());
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "a");
        assert!(cmp.render().contains("REGRESSED"), "{}", cmp.render());
    }

    #[test]
    fn compare_fails_when_a_tracked_bench_disappears() {
        let baseline = vec![rec("a", 100.0), rec("gone", 50.0)];
        let current = vec![rec("a", 100.0)];
        let cmp = compare(&baseline, &current, Tolerances::default());
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, vec!["gone".to_string()]);
        assert!(cmp.render().contains("MISSING"), "{}", cmp.render());
    }

    #[test]
    fn percentiles_are_gated_with_their_own_tolerances() {
        let baseline = vec![rec_pct("lh/get", 100.0, 80.0, 500.0, 2000.0)];
        // p99 at 2.9x (within its 2.0 tolerance), median/p50 unchanged.
        let within = vec![rec_pct("lh/get", 100.0, 80.0, 1450.0, 2000.0)];
        let cmp = compare(&baseline, &within, Tolerances::default());
        assert!(cmp.passed(), "{}", cmp.render());
        assert_eq!(cmp.entries.len(), 4);
        // The same ratio on p50 trips its (tighter) gate.
        let p50_blown = vec![rec_pct("lh/get", 100.0, 232.0, 500.0, 2000.0)];
        let cmp = compare(&baseline, &p50_blown, Tolerances::default());
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions()[0].metric, Metric::P50);
        // p999 beyond 5x trips the widest gate.
        let p999_blown = vec![rec_pct("lh/get", 100.0, 80.0, 500.0, 10100.0)];
        let cmp = compare(&baseline, &p999_blown, Tolerances::default());
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions()[0].metric, Metric::P999);
    }

    #[test]
    fn compare_fails_when_a_tracked_percentile_disappears() {
        let baseline = vec![rec_pct("lh/get", 100.0, 80.0, 500.0, 2000.0)];
        let current = vec![rec("lh/get", 100.0)];
        let cmp = compare(&baseline, &current, Tolerances::default());
        assert!(!cmp.passed());
        assert_eq!(cmp.missing.len(), 3);
        assert!(cmp.missing[0].contains("[p50]"), "{:?}", cmp.missing);
    }
}
