//! The benchmark-results pipeline behind CI's `BENCH_results.json` artifact.
//!
//! `cargo bench` run with `BENCH_RESULTS_LOG=<path>` (see the criterion
//! shim) appends one tab-separated record per benchmark:
//!
//! ```text
//! name \t ns_per_iter \t bytes_per_sec \t elements_per_sec
//! ```
//!
//! where the two throughput fields are `-` when the bench has no such
//! annotation. [`parse_log`] validates that log strictly — a malformed line
//! is an error, not a skip, so CI fails loudly instead of uploading a
//! silently truncated artifact — and [`render_json`] turns the records into
//! the JSON document the `bench_json` binary writes:
//!
//! ```json
//! {
//!   "benchmarks": [
//!     {"name": "gf_kernels/mul_slice/32768", "ns_per_iter": 1234.5,
//!      "bytes_per_sec": 26543210.9}
//!   ]
//! }
//! ```

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`group/function/param`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput, when the bench declared `Throughput::Bytes`.
    pub bytes_per_sec: Option<f64>,
    /// Throughput, when the bench declared `Throughput::Elements`.
    pub elements_per_sec: Option<f64>,
}

fn parse_throughput(field: &str, line_no: usize, what: &str) -> Result<Option<f64>, String> {
    if field == "-" {
        return Ok(None);
    }
    field
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(Some)
        .ok_or_else(|| format!("line {line_no}: bad {what} field {field:?}"))
}

/// Parses a `BENCH_RESULTS_LOG` file. Blank lines are ignored; any other
/// deviation from the four-field record format is an error.
pub fn parse_log(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {line_no}: expected 4 tab-separated fields, got {}",
                fields.len()
            ));
        }
        if fields[0].is_empty() {
            return Err(format!("line {line_no}: empty benchmark name"));
        }
        if !seen.insert(fields[0].to_string()) {
            return Err(format!(
                "line {line_no}: duplicate benchmark name {:?} — \
                 stale log appended across runs? delete it and re-run",
                fields[0]
            ));
        }
        let ns_per_iter = fields[1]
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("line {line_no}: bad ns_per_iter field {:?}", fields[1]))?;
        records.push(BenchRecord {
            name: fields[0].to_string(),
            ns_per_iter,
            bytes_per_sec: parse_throughput(fields[2], line_no, "bytes_per_sec")?,
            elements_per_sec: parse_throughput(fields[3], line_no, "elements_per_sec")?,
        });
    }
    if records.is_empty() {
        return Err("no benchmark records found".to_string());
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(records)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the records as the `BENCH_results.json` document (stable field
/// order, sorted by name upstream in [`parse_log`]).
pub fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.3}",
            escape_json(&r.name),
            r.ns_per_iter
        ));
        if let Some(bps) = r.bytes_per_sec {
            out.push_str(&format!(", \"bytes_per_sec\": {bps:.3}"));
        }
        if let Some(eps) = r.elements_per_sec {
            out.push_str(&format!(", \"elements_per_sec\": {eps:.3}"));
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn unescape_json(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('u') => {
                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in {s:?}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad \\u escape in {s:?}"))?);
            }
            other => return Err(format!("bad escape {other:?} in {s:?}")),
        }
    }
    Ok(out)
}

/// Parses a `BENCH_results.json` / `BENCH_baseline.json` document back into
/// records. This is not a general JSON parser — it accepts exactly the
/// stable one-record-per-line shape [`render_json`] emits (which is also
/// what reviewers diff in the committed baseline), and errors on anything
/// else rather than guessing.
pub fn parse_results_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    fn field(tail: &str, key: &str) -> Option<String> {
        let tagged = format!("\"{key}\": ");
        let start = tail.find(&tagged)? + tagged.len();
        let rest = &tail[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    }

    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let entry = line.trim_end_matches(',');
        const NAME_TAG: &str = "\"name\": \"";
        let name_start = entry
            .find(NAME_TAG)
            .ok_or_else(|| format!("unparseable results entry: {line}"))?
            + NAME_TAG.len();
        let after_name = &entry[name_start..];
        // Find the name's closing quote, skipping escaped ones; everything
        // after it is numeric fields, so `field` can split on , and }.
        let name_len = {
            let mut backslashes = 0usize;
            after_name
                .char_indices()
                .find_map(|(i, c)| match c {
                    '\\' => {
                        backslashes += 1;
                        None
                    }
                    '"' if backslashes.is_multiple_of(2) => Some(i),
                    _ => {
                        backslashes = 0;
                        None
                    }
                })
                .ok_or_else(|| format!("unterminated name in entry: {line}"))?
        };
        let name = unescape_json(&after_name[..name_len])?;
        let tail = &after_name[name_len + 1..];
        let ns_per_iter = field(tail, "ns_per_iter")
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("entry {name:?}: missing or bad ns_per_iter"))?;
        let parse_opt = |key: &str| field(tail, key).and_then(|v| v.parse::<f64>().ok());
        records.push(BenchRecord {
            name,
            ns_per_iter,
            bytes_per_sec: parse_opt("bytes_per_sec"),
            elements_per_sec: parse_opt("elements_per_sec"),
        });
    }
    if records.is_empty() {
        return Err("no benchmark entries found in results JSON".to_string());
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(records)
}

/// One tracked benchmark's baseline-vs-current medians.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonEntry {
    /// Benchmark name (`group/function/param`).
    pub name: String,
    /// Median ns/iter recorded in the committed baseline.
    pub baseline_ns: f64,
    /// Median ns/iter measured by this run.
    pub current_ns: f64,
}

impl ComparisonEntry {
    /// `current / baseline`: 1.0 is unchanged, above 1.0 is slower.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// The result of comparing a run against the committed baseline.
///
/// Every benchmark *in the baseline* is tracked: it must be present in the
/// current run and within tolerance of its recorded median. Benchmarks the
/// current run adds are fine — they become tracked when the baseline is
/// refreshed (see `docs/BENCHMARKS.md`).
#[derive(Debug)]
pub struct Comparison {
    /// One entry per tracked benchmark present in both sets.
    pub entries: Vec<ComparisonEntry>,
    /// Tracked benchmarks the current run did not produce — a fail: a
    /// deleted bench silently un-tracks a number the gate was protecting.
    pub missing: Vec<String>,
    /// Allowed fractional slowdown (`0.5` = fail beyond 1.5× baseline).
    pub tolerance: f64,
}

impl Comparison {
    /// Tracked benchmarks that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&ComparisonEntry> {
        self.entries
            .iter()
            .filter(|e| e.ratio() > 1.0 + self.tolerance)
            .collect()
    }

    /// Whether the gate passes: nothing missing, nothing regressed.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }

    /// A human-readable per-benchmark table for the CI log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let verdict = if e.ratio() > 1.0 + self.tolerance {
                "REGRESSED"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<50} {:>12.1} -> {:>12.1} ns  ({:>5.2}x)  {verdict}\n",
                e.name,
                e.baseline_ns,
                e.current_ns,
                e.ratio()
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<50} MISSING from this run\n"));
        }
        out
    }
}

/// Compares current medians against the committed baseline. `tolerance` is
/// the allowed fractional slowdown per tracked benchmark.
pub fn compare(baseline: &[BenchRecord], current: &[BenchRecord], tolerance: f64) -> Comparison {
    let current_by_name: std::collections::HashMap<&str, &BenchRecord> =
        current.iter().map(|r| (r.name.as_str(), r)).collect();
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    for b in baseline {
        match current_by_name.get(b.name.as_str()) {
            Some(c) => entries.push(ComparisonEntry {
                name: b.name.clone(),
                baseline_ns: b.ns_per_iter,
                current_ns: c.ns_per_iter,
            }),
            None => missing.push(b.name.clone()),
        }
    }
    Comparison {
        entries,
        missing,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sorts_valid_log() {
        let log = "b/two\t200.5\t-\t50.25\n\na/one\t100.123\t1048576.5\t-\n";
        let records = parse_log(log).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "a/one");
        assert_eq!(records[0].bytes_per_sec, Some(1048576.5));
        assert_eq!(records[0].elements_per_sec, None);
        assert_eq!(records[1].name, "b/two");
        assert_eq!(records[1].elements_per_sec, Some(50.25));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_log("").is_err());
        assert!(parse_log("only three\tfields\there\n").is_err());
        assert!(parse_log("name\tnot_a_number\t-\t-\n").is_err());
        assert!(parse_log("name\t-5.0\t-\t-\n").is_err());
        assert!(parse_log("name\t10.0\tNaN\t-\n").is_err());
        assert!(parse_log("\t10.0\t-\t-\n").is_err());
    }

    #[test]
    fn rejects_duplicate_names_from_stale_appended_logs() {
        let twice = "a/one\t100.0\t-\t-\na/one\t120.0\t-\t-\n";
        let err = parse_log(twice).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn renders_machine_readable_json() {
        let records = parse_log("g/f/64\t1500.0\t42666666.667\t-\n").unwrap();
        let json = render_json(&records);
        assert!(json.contains("\"name\": \"g/f/64\""));
        assert!(json.contains("\"ns_per_iter\": 1500.000"));
        assert!(json.contains("\"bytes_per_sec\": 42666666.667"));
        assert!(!json.contains("elements_per_sec"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_exotic_names() {
        let records = vec![BenchRecord {
            name: "weird\"name\\with\tcontrol".to_string(),
            ns_per_iter: 1.0,
            bytes_per_sec: None,
            elements_per_sec: None,
        }];
        let json = render_json(&records);
        assert!(json.contains("weird\\\"name\\\\with\\u0009control"));
    }

    #[test]
    fn results_json_roundtrips_through_the_parser() {
        let records = parse_log(
            "g/mul/32768\t1500.5\t42666666.667\t-\n\
             exec/repair\t900000.0\t-\t12.5\n\
             weird\"name\t10.0\t-\t-\n",
        )
        .unwrap();
        let parsed = parse_results_json(&render_json(&records)).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed, records);
    }

    #[test]
    fn results_json_parser_rejects_garbage() {
        assert!(parse_results_json("").is_err());
        assert!(parse_results_json("{\n  \"benchmarks\": []\n}\n").is_err());
        assert!(parse_results_json("    {\"name\": \"x\", \"ns_per_iter\": -3.0},\n").is_err());
        assert!(parse_results_json("    {\"name\": \"x\"},\n").is_err());
    }

    fn rec(name: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            ns_per_iter: ns,
            bytes_per_sec: None,
            elements_per_sec: None,
        }
    }

    #[test]
    fn compare_passes_within_tolerance_and_ignores_new_benches() {
        let baseline = vec![rec("a", 100.0), rec("b", 1000.0)];
        let current = vec![rec("a", 140.0), rec("b", 900.0), rec("brand_new", 5.0)];
        let cmp = compare(&baseline, &current, 0.5);
        assert!(cmp.passed(), "{}", cmp.render());
        assert_eq!(cmp.entries.len(), 2);
        assert!(cmp.missing.is_empty());
    }

    #[test]
    fn compare_fails_on_regression_beyond_tolerance() {
        let baseline = vec![rec("a", 100.0), rec("b", 1000.0)];
        let current = vec![rec("a", 151.0), rec("b", 1000.0)];
        let cmp = compare(&baseline, &current, 0.5);
        assert!(!cmp.passed());
        let regressions = cmp.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "a");
        assert!(cmp.render().contains("REGRESSED"), "{}", cmp.render());
    }

    #[test]
    fn compare_fails_when_a_tracked_bench_disappears() {
        let baseline = vec![rec("a", 100.0), rec("gone", 50.0)];
        let current = vec![rec("a", 100.0)];
        let cmp = compare(&baseline, &current, 0.5);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, vec!["gone".to_string()]);
        assert!(cmp.render().contains("MISSING"), "{}", cmp.render());
    }
}
