//! The benchmark-results pipeline behind CI's `BENCH_results.json` artifact.
//!
//! `cargo bench` run with `BENCH_RESULTS_LOG=<path>` (see the criterion
//! shim) appends one tab-separated record per benchmark:
//!
//! ```text
//! name \t ns_per_iter \t bytes_per_sec \t elements_per_sec
//! ```
//!
//! where the two throughput fields are `-` when the bench has no such
//! annotation. [`parse_log`] validates that log strictly — a malformed line
//! is an error, not a skip, so CI fails loudly instead of uploading a
//! silently truncated artifact — and [`render_json`] turns the records into
//! the JSON document the `bench_json` binary writes:
//!
//! ```json
//! {
//!   "benchmarks": [
//!     {"name": "gf_kernels/mul_slice/32768", "ns_per_iter": 1234.5,
//!      "bytes_per_sec": 26543210.9}
//!   ]
//! }
//! ```

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name (`group/function/param`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput, when the bench declared `Throughput::Bytes`.
    pub bytes_per_sec: Option<f64>,
    /// Throughput, when the bench declared `Throughput::Elements`.
    pub elements_per_sec: Option<f64>,
}

fn parse_throughput(field: &str, line_no: usize, what: &str) -> Result<Option<f64>, String> {
    if field == "-" {
        return Ok(None);
    }
    field
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(Some)
        .ok_or_else(|| format!("line {line_no}: bad {what} field {field:?}"))
}

/// Parses a `BENCH_RESULTS_LOG` file. Blank lines are ignored; any other
/// deviation from the four-field record format is an error.
pub fn parse_log(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {line_no}: expected 4 tab-separated fields, got {}",
                fields.len()
            ));
        }
        if fields[0].is_empty() {
            return Err(format!("line {line_no}: empty benchmark name"));
        }
        if !seen.insert(fields[0].to_string()) {
            return Err(format!(
                "line {line_no}: duplicate benchmark name {:?} — \
                 stale log appended across runs? delete it and re-run",
                fields[0]
            ));
        }
        let ns_per_iter = fields[1]
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("line {line_no}: bad ns_per_iter field {:?}", fields[1]))?;
        records.push(BenchRecord {
            name: fields[0].to_string(),
            ns_per_iter,
            bytes_per_sec: parse_throughput(fields[2], line_no, "bytes_per_sec")?,
            elements_per_sec: parse_throughput(fields[3], line_no, "elements_per_sec")?,
        });
    }
    if records.is_empty() {
        return Err("no benchmark records found".to_string());
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(records)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the records as the `BENCH_results.json` document (stable field
/// order, sorted by name upstream in [`parse_log`]).
pub fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.3}",
            escape_json(&r.name),
            r.ns_per_iter
        ));
        if let Some(bps) = r.bytes_per_sec {
            out.push_str(&format!(", \"bytes_per_sec\": {bps:.3}"));
        }
        if let Some(eps) = r.elements_per_sec {
            out.push_str(&format!(", \"elements_per_sec\": {eps:.3}"));
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sorts_valid_log() {
        let log = "b/two\t200.5\t-\t50.25\n\na/one\t100.123\t1048576.5\t-\n";
        let records = parse_log(log).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "a/one");
        assert_eq!(records[0].bytes_per_sec, Some(1048576.5));
        assert_eq!(records[0].elements_per_sec, None);
        assert_eq!(records[1].name, "b/two");
        assert_eq!(records[1].elements_per_sec, Some(50.25));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_log("").is_err());
        assert!(parse_log("only three\tfields\there\n").is_err());
        assert!(parse_log("name\tnot_a_number\t-\t-\n").is_err());
        assert!(parse_log("name\t-5.0\t-\t-\n").is_err());
        assert!(parse_log("name\t10.0\tNaN\t-\n").is_err());
        assert!(parse_log("\t10.0\t-\t-\n").is_err());
    }

    #[test]
    fn rejects_duplicate_names_from_stale_appended_logs() {
        let twice = "a/one\t100.0\t-\t-\na/one\t120.0\t-\t-\n";
        let err = parse_log(twice).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn renders_machine_readable_json() {
        let records = parse_log("g/f/64\t1500.0\t42666666.667\t-\n").unwrap();
        let json = render_json(&records);
        assert!(json.contains("\"name\": \"g/f/64\""));
        assert!(json.contains("\"ns_per_iter\": 1500.000"));
        assert!(json.contains("\"bytes_per_sec\": 42666666.667"));
        assert!(!json.contains("elements_per_sec"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_exotic_names() {
        let records = vec![BenchRecord {
            name: "weird\"name\\with\tcontrol".to_string(),
            ns_per_iter: 1.0,
            bytes_per_sec: None,
            elements_per_sec: None,
        }];
        let json = render_json(&records);
        assert!(json.contains("weird\\\"name\\\\with\\u0009control"));
    }
}
