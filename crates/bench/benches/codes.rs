//! Criterion benches for erasure-code encode / decode / repair planning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecc::{ErasureCode, Lrc, ReedSolomon};

const BLOCK: usize = 1024 * 1024;

fn random_data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..BLOCK).map(|b| ((b * 31 + i * 7) % 253) as u8).collect())
        .collect()
}

fn bench_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("codes");
    for (n, k) in [(9usize, 6usize), (14, 10)] {
        let rs = ReedSolomon::new(n, k).unwrap();
        let data = random_data(k);
        group.throughput(Throughput::Bytes((k * BLOCK) as u64));
        group.bench_with_input(
            BenchmarkId::new("rs_encode", format!("({n},{k})")),
            &rs,
            |b, rs| {
                b.iter(|| rs.encode(&data).unwrap());
            },
        );
        let coded = rs.encode(&data).unwrap();
        let available: Vec<(usize, Vec<u8>)> = (k..n)
            .chain(0..k - (n - k))
            .map(|i| (i, coded[i].clone()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("rs_decode", format!("({n},{k})")),
            &rs,
            |b, rs| {
                b.iter(|| rs.decode(&available).unwrap());
            },
        );
        let helpers: Vec<usize> = (1..n).collect();
        group.bench_with_input(
            BenchmarkId::new("rs_repair_plan", format!("({n},{k})")),
            &rs,
            |b, rs| {
                b.iter(|| rs.repair_plan(0, &helpers).unwrap());
            },
        );
    }

    let lrc = Lrc::new(12, 2, 2).unwrap();
    let data = random_data(12);
    group.throughput(Throughput::Bytes((12 * BLOCK) as u64));
    group.bench_function("lrc_encode(12,2,2)", |b| {
        b.iter(|| lrc.encode(&data).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codes
}
criterion_main!(benches);
