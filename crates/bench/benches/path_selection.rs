//! Criterion bench for weighted path selection (§4.3): Algorithm 2 versus
//! brute force, the paper's 27 s vs 0.9 ms comparison (measured here at
//! sizes where brute force completes within a benchmark iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use repair::weighted_path::{brute_force_path, optimal_path, WeightMatrix};

fn random_weights(n: usize, seed: u64) -> WeightMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WeightMatrix::new(n, (0..n * n).map(|_| rng.gen_range(0.001..1.0)).collect())
}

fn bench_path_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_selection");

    // Algorithm 2 at the paper's (14,10) scale.
    let weights = random_weights(14, 7);
    let candidates: Vec<usize> = (1..14).collect();
    group.bench_function("algorithm2_(14,10)", |b| {
        b.iter(|| optimal_path(&weights, 0, &candidates, 10).unwrap());
    });

    // Brute force only at reduced sizes (it grows factorially).
    for (n, k) in [(8usize, 4usize), (9, 5)] {
        let weights = random_weights(n, 11);
        let candidates: Vec<usize> = (1..n).collect();
        group.bench_with_input(
            BenchmarkId::new("brute_force", format!("({n},{k})")),
            &weights,
            |b, w| {
                b.iter(|| brute_force_path(w, 0, &candidates, k).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("algorithm2", format!("({n},{k})")),
            &weights,
            |b, w| {
                b.iter(|| optimal_path(w, 0, &candidates, k).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_path_selection
}
criterion_main!(benches);
