//! Criterion benches for the GF(2^8) slice kernels — the inner loop every
//! helper runs when combining partial slices during a repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gf256::Gf256;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_kernels");
    for size in [32 * 1024usize, 1024 * 1024] {
        let src: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("mul_add_slice", size), &size, |b, _| {
            b.iter(|| gf256::mul_add_slice(Gf256::new(0x57), &src, &mut dst));
        });
        group.bench_with_input(BenchmarkId::new("add_slice", size), &size, |b, _| {
            b.iter(|| gf256::add_slice(&src, &mut dst));
        });
        group.bench_with_input(BenchmarkId::new("mul_slice", size), &size, |b, _| {
            b.iter(|| gf256::mul_slice(Gf256::new(0x57), &src, &mut dst));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
