//! Criterion bench for full-node recovery through the ECPipe runtime:
//! sequential `full_node_recovery_over` versus the repair manager's
//! 4-worker pool, on rate-limited links of both transport backends.
//!
//! Every link is token-bucket throttled so the repairs are network-bound
//! (the paper's testbed setting); the manager's concurrency then shows up
//! as recovery throughput rather than being hidden behind CPU time. The
//! `bytes_per_sec` column of `BENCH_results.json` is the recovery rate.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecc::slice::SliceLayout;
use ecc::ReedSolomon;
use ecpipe::manager::{recover_node, ManagerConfig};
use ecpipe::recovery::full_node_recovery_over;
use ecpipe::transport::{ChannelTransport, TcpTransport, Transport};
use ecpipe::{Cluster, Coordinator, ExecStrategy, StoreBackend};

const BLOCK: usize = 64 * 1024;
const SLICE: usize = 8 * 1024;
const STORAGE_NODES: usize = 12;
const STRIPES: u64 = 24;
const FAILED_NODE: usize = 2;
/// The failed node holds one block of half the stripes.
const LOST_BLOCKS: usize = 12;
const REQUESTORS: [usize; 2] = [12, 13];
const LINK_RATE: u64 = 4 * 1024 * 1024;

fn setup() -> (Coordinator, Cluster) {
    let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory(STORAGE_NODES + 2)).unwrap();
    for s in 0..STRIPES {
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..BLOCK)
                    .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                    .collect()
            })
            .collect();
        let placement: Vec<usize> = (0..6).map(|i| (s as usize + i) % STORAGE_NODES).collect();
        cluster
            .write_stripe_with_placement(&mut coordinator, s, &data, placement)
            .unwrap();
    }
    cluster.kill_node(FAILED_NODE);
    (coordinator, cluster)
}

fn bench_backend<T: Transport>(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    make: impl Fn() -> T,
) {
    let transport = make();
    let (mut coordinator, cluster) = setup();
    group.bench_function(BenchmarkId::new("full_node_sequential", label), |b| {
        b.iter(|| {
            full_node_recovery_over(
                &mut coordinator,
                &cluster,
                FAILED_NODE,
                &REQUESTORS,
                ExecStrategy::RepairPipelining,
                &transport,
            )
            .unwrap()
        });
    });

    let transport = make();
    let (mut coordinator, cluster) = setup();
    let config = ManagerConfig::default()
        .with_workers(4)
        .with_inflight_cap(3);
    group.bench_function(BenchmarkId::new("full_node_manager_4w", label), |b| {
        b.iter(|| {
            recover_node(
                &mut coordinator,
                &cluster,
                &transport,
                FAILED_NODE,
                &REQUESTORS,
                &config,
            )
            .unwrap()
        });
    });
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_recovery");
    group.throughput(Throughput::Bytes((LOST_BLOCKS * BLOCK) as u64));
    bench_backend(&mut group, "channel", || {
        ChannelTransport::with_rate_limit(LINK_RATE)
    });
    bench_backend(&mut group, "tcp", || {
        TcpTransport::with_rate_limit(LINK_RATE)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recovery
}
criterion_main!(benches);
