//! Criterion bench for the end-to-end client data path: `EcPipe::put` and
//! `EcPipe::get` through the builder-configured façade, on both transport
//! backends.
//!
//! This is the first bench whose `bytes_per_sec` column reports *client*
//! throughput (object bytes in or out of the store) rather than repair
//! traffic, so `BENCH_results.json` tracks the serving path alongside the
//! recovery rate. `put` pays erasure encoding plus `n` block writes (each
//! iteration deletes its object, keeping memory flat); `get` is the native
//! read path; `get_degraded` erases one block first, so every read pays a
//! manager-prioritized degraded read over the transport.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecpipe::{EcPipe, EcPipeBuilder, StoreBackend, TransportChoice};

const BLOCK: usize = 64 * 1024;
const SLICE: usize = 8 * 1024;
/// One object spans two (6,4) stripes, unaligned on purpose.
const OBJECT: usize = 2 * 4 * BLOCK - 4321;

fn object_bytes() -> Vec<u8> {
    (0..OBJECT).map(|i| ((i * 31 + 7) % 251) as u8).collect()
}

fn build_pipe(transport: TransportChoice) -> EcPipe {
    EcPipeBuilder::new()
        .code(6, 4)
        .block_size(BLOCK)
        .slice_size(SLICE)
        .store(StoreBackend::memory(10))
        .transport(transport)
        .build()
        .expect("façade builds")
}

fn bench_backend(group: &mut criterion::BenchmarkGroup<'_>, label: &str, choice: TransportChoice) {
    let data = object_bytes();

    let pipe = build_pipe(choice);
    let mut i = 0u64;
    group.bench_function(BenchmarkId::new("put", label), |b| {
        b.iter(|| {
            i += 1;
            let name = format!("/bench/{i}");
            pipe.put(&name, &data).expect("put succeeds");
            pipe.delete(&name).expect("delete succeeds");
        });
    });
    pipe.shutdown();

    let pipe = build_pipe(choice);
    pipe.put("/bench/obj", &data).expect("put succeeds");
    group.bench_function(BenchmarkId::new("get", label), |b| {
        b.iter(|| pipe.get("/bench/obj").expect("get succeeds"));
    });

    let meta = pipe.object_meta("/bench/obj").expect("object exists");
    group.bench_function(BenchmarkId::new("get_degraded", label), |b| {
        b.iter(|| {
            // Re-erase each round so every read pays one degraded read.
            pipe.erase_block(meta.stripes[0], 1);
            pipe.get("/bench/obj").expect("degraded get succeeds")
        });
    });
    pipe.shutdown();
}

fn bench_client(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_put_get");
    group.throughput(Throughput::Bytes(OBJECT as u64));
    bench_backend(&mut group, "channel", TransportChoice::Channel);
    bench_backend(&mut group, "tcp", TransportChoice::Tcp);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_client
}
criterion_main!(benches);
