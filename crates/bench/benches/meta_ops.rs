//! Criterion bench for the sharded metadata plane: per-op latency of the
//! hot `MetaRouter` operations as the namespace grows 10k → 100k → 1M
//! objects.
//!
//! The point being pinned: with the namespace consistent-hashed over 8
//! shards (each a hash map behind its own rank-ordered lock), register and
//! lookup latency is *flat* in the namespace size — the 1M-object medians
//! must stay within the regression gate's tolerance of the 10k ones, not
//! grow with it. `stripes_on_node` additionally pins the iteration APIs
//! that replaced the clone-the-world coordinator accessors: one pass over
//! the shards with a caller-owned accumulator, no per-stripe allocation
//! beyond the matches themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecpipe::{MetaConfig, MetaRouter, ObjectRecord};

const NODES: usize = 12;
const N: usize = 4;
const SHARDS: usize = 8;
const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// A router prepopulated with `size` objects, one (4-location) stripe each.
fn populated(size: usize) -> MetaRouter {
    let meta = MetaRouter::open(MetaConfig::ephemeral().with_shards(SHARDS))
        .expect("ephemeral router opens");
    for i in 0..size {
        let id = meta.allocate_stripe_id();
        let locations: Vec<usize> = (0..N).map(|b| (i + b) % NODES).collect();
        meta.register_stripe(id, locations)
            .expect("register stripe");
        meta.register_object(ObjectRecord {
            name: object_name(i),
            size: 64 * 1024,
            stripes: vec![id],
        })
        .expect("register object");
    }
    meta
}

fn object_name(i: usize) -> String {
    format!("/bench/meta/obj-{i:07}")
}

fn bench_meta_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_ops");
    group.throughput(Throughput::Elements(1));

    for size in SIZES {
        let meta = populated(size);

        // Register one new object (stripe + object record) into a namespace
        // of `size`, then remove it so the size under test stays constant.
        // The insertion keys cycle through a fixed 256-slot window for the
        // same reason the lookup keys below do: the flatness claim is about
        // the structural cost of an insert (route, probe, WAL-less upsert)
        // staying O(1) in the namespace size, not about how much of a
        // million-entry table a CPU can keep warm.
        let ids: Vec<_> = (0..256).map(|_| meta.allocate_stripe_id()).collect();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("register", size), |b| {
            b.iter(|| {
                i = (i + 101) % 256;
                let id = ids[i];
                let locations: Vec<usize> = (0..N).map(|b| (i + b) % NODES).collect();
                meta.register_stripe(id, locations)
                    .expect("register stripe");
                let name = object_name(size + i);
                meta.register_object(ObjectRecord {
                    name: name.clone(),
                    size: 64 * 1024,
                    stripes: vec![id],
                })
                .expect("register object");
                meta.remove_object(&name).expect("remove object");
                meta.forget_stripe(id).expect("forget stripe");
            });
        });

        // Point lookup of an existing object. The keys cycle through a
        // fixed 256-name window whose members are strided across the whole
        // namespace (so every shard is hit), keeping the touched entries
        // cache-resident at every size: the datapoint then isolates the
        // *structural* per-op cost — hash, ring route, probe, record clone
        // — which is what must stay flat as the namespace grows, from the
        // DRAM residency of a million-entry table, which cannot.
        let stride = size / 256;
        let mut j = 0usize;
        group.bench_function(BenchmarkId::new("lookup", size), |b| {
            b.iter(|| {
                j = (j + 101) % 256;
                meta.object(&object_name(j * stride))
                    .expect("object exists")
            });
        });
    }

    // The iteration path at full scale: every (stripe, block) on one node,
    // collected in a single pass over the shards without cloning the
    // namespace. At 1M stripes over 12 nodes this touches every shard map
    // entry, so it is the bench most sensitive to accidental clones.
    let meta = populated(SIZES[2]);
    group.bench_function(BenchmarkId::new("stripes_on_node", SIZES[2]), |b| {
        b.iter(|| meta.stripes_on_node(3).len());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_meta_ops
}
criterion_main!(benches);
