//! Criterion bench for the ECPipe runtime: end-to-end single-block repair
//! throughput of the execution strategies on an in-memory cluster.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecc::slice::SliceLayout;
use ecc::ReedSolomon;
use ecpipe::exec::{execute_single, ExecStrategy};
use ecpipe::transport::ChannelTransport;
use ecpipe::{Cluster, Coordinator, SelectionPolicy, StoreBackend};

const BLOCK: usize = 4 * 1024 * 1024;

fn bench_runtime(c: &mut Criterion) {
    let code = Arc::new(ReedSolomon::new(14, 10).unwrap());
    let layout = SliceLayout::new(BLOCK, 32 * 1024);
    let mut coordinator = Coordinator::new(code, layout);
    let cluster = Cluster::new(StoreBackend::memory(16)).unwrap();
    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| {
            (0..BLOCK)
                .map(|b| ((b * 13 + i * 31) % 251) as u8)
                .collect()
        })
        .collect();
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    cluster.erase_block(stripe, 0);
    let directive = coordinator
        .plan_single_repair(stripe, 0, 15, &[], SelectionPolicy::CodeDefault)
        .unwrap();

    let mut group = c.benchmark_group("runtime_exec");
    group.throughput(Throughput::Bytes(BLOCK as u64));
    for strategy in [
        ExecStrategy::Conventional,
        ExecStrategy::Ppr,
        ExecStrategy::RepairPipelining,
        ExecStrategy::BlockPipeline,
    ] {
        group.bench_with_input(
            BenchmarkId::new("single_block_repair", strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let transport = ChannelTransport::new();
                    execute_single(&directive, &cluster, &transport, strategy).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_runtime
}
criterion_main!(benches);
