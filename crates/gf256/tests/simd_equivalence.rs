//! Every supported kernel path must agree with the scalar oracle.
//!
//! The scalar loops are validated against the `Gf256` field arithmetic by
//! the in-crate proptests; here each vectorized path is held to the scalar
//! result across the shapes that historically break SIMD ports: unaligned
//! base pointers, lengths that straddle the vector width (full lanes plus a
//! scalar tail), empty slices, and all 256 coefficients including the 0 and
//! 1 fast paths.

use gf256::{Gf256, KernelPath, Kernels};
use proptest::prelude::*;

/// The widest vector width any path uses (AVX2: 32 bytes).
const MAX_LANE: usize = 32;

/// Slice lengths that straddle every lane width: 0..=3×32 covers 0–3 full
/// vectors for AVX2 and 0–6 for the 16-byte paths, each ±1 around the
/// boundaries via the dense sweep below.
const LENGTHS: std::ops::RangeInclusive<usize> = 0..=3 * MAX_LANE;

/// Misalignments to apply to the slice base pointers.
const OFFSETS: [usize; 5] = [0, 1, 7, 13, 15];

fn scalar() -> &'static Kernels {
    Kernels::for_path(KernelPath::Scalar).expect("scalar is always supported")
}

/// Every path the host supports except scalar itself (which would compare
/// the oracle against itself).
fn simd_paths() -> Vec<&'static Kernels> {
    KernelPath::supported_paths()
        .into_iter()
        .filter(|p| *p != KernelPath::Scalar)
        .map(|p| Kernels::for_path(p).expect("listed as supported"))
        .collect()
}

/// Deterministic byte pattern that hits every value and doesn't repeat with
/// period 16 or 32 (251 is prime), so lane mix-ups change the result.
fn pattern(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 37 + salt) % 251) as u8).collect()
}

/// Runs `op` on misaligned copies of src/dst for one path and the scalar
/// oracle and asserts identical results.
fn check_op(
    kernels: &Kernels,
    coeff: u8,
    len: usize,
    offset: usize,
    op: fn(&Kernels, Gf256, &[u8], &mut [u8]),
) {
    // Pad the front so `&buf[offset..]` exercises a misaligned base.
    let src_buf = pattern(offset + len, 3);
    let dst_init = pattern(offset + len, 101);

    let mut got = dst_init.clone();
    op(
        kernels,
        Gf256::new(coeff),
        &src_buf[offset..],
        &mut got[offset..],
    );

    let mut expected = dst_init.clone();
    op(
        scalar(),
        Gf256::new(coeff),
        &src_buf[offset..],
        &mut expected[offset..],
    );

    assert_eq!(
        got,
        expected,
        "path={} coeff={coeff} len={len} offset={offset}",
        kernels.path()
    );
    // The pad bytes in front of the slice must be untouched.
    assert_eq!(&got[..offset], &dst_init[..offset]);
}

fn mul(k: &Kernels, c: Gf256, s: &[u8], d: &mut [u8]) {
    k.mul_slice(c, s, d);
}

fn mul_add(k: &Kernels, c: Gf256, s: &[u8], d: &mut [u8]) {
    k.mul_add_slice(c, s, d);
}

fn add(k: &Kernels, _c: Gf256, s: &[u8], d: &mut [u8]) {
    k.add_slice(s, d);
}

fn scale(k: &Kernels, c: Gf256, s: &[u8], d: &mut [u8]) {
    d.copy_from_slice(s);
    k.scale_slice_in_place(c, d);
}

#[test]
fn all_coefficients_at_boundary_lengths() {
    // Dense around every multiple of 16 and 32 up to 3×32, sparse offsets.
    let lengths: Vec<usize> = LENGTHS
        .filter(|l| l % 16 == 0 || l % 16 == 1 || l % 16 == 15)
        .collect();
    for kernels in simd_paths() {
        for coeff in 0..=255u8 {
            for &len in &lengths {
                for op in [mul, mul_add, add, scale] {
                    check_op(kernels, coeff, len, coeff as usize % 4, op);
                }
            }
        }
    }
}

#[test]
fn every_length_in_the_three_vector_sweep() {
    // All lengths 0..=96 at every listed misalignment, a few coefficients.
    for kernels in simd_paths() {
        for len in LENGTHS {
            for &offset in &OFFSETS {
                for coeff in [0u8, 1, 2, 0x1d, 0x8e, 0xff] {
                    for op in [mul, mul_add, add, scale] {
                        check_op(kernels, coeff, len, offset, op);
                    }
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn random_shapes_match_scalar(
        coeff in any::<u8>(),
        offset in 0usize..MAX_LANE,
        src in proptest::collection::vec(any::<u8>(), 0..4 * MAX_LANE),
        seed in any::<u8>(),
    ) {
        for kernels in simd_paths() {
            let dst_init = vec![seed; src.len() + offset];
            let src_buf: Vec<u8> = vec![0; offset]
                .into_iter()
                .chain(src.iter().copied())
                .collect();
            for op in [mul, mul_add, add, scale] {
                let mut got = dst_init.clone();
                op(kernels, Gf256::new(coeff), &src_buf[offset..], &mut got[offset..]);
                let mut expected = dst_init.clone();
                op(scalar(), Gf256::new(coeff), &src_buf[offset..], &mut expected[offset..]);
                prop_assert_eq!(&got, &expected, "path={} coeff={}", kernels.path(), coeff);
            }
        }
    }
}
