//! Galois field GF(2^8) arithmetic and matrix algebra for erasure coding.
//!
//! This crate is the lowest-level substrate of the repair-pipelining
//! reproduction. It provides:
//!
//! * [`Gf256`] — a single field element with full arithmetic (addition is
//!   XOR; multiplication uses exp/log tables over the standard polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1`, i.e. `0x11d`).
//! * Bulk slice kernels ([`mul_slice`], [`mul_add_slice`], [`add_slice`]) —
//!   the inner loops every helper node runs when combining slices during a
//!   repair (`a_i * B_i` accumulated into a partial sum).
//! * [`Matrix`] — a dense matrix over GF(2^8) with Gauss-Jordan inversion,
//!   used to derive encoding matrices and single-block repair coefficients.
//!
//! The slice kernels are runtime-dispatched: on hosts with SSSE3/AVX2
//! (x86/x86_64) or NEON (aarch64) they run vectorized split-table loops,
//! falling back to portable scalar code elsewhere. See the [`simd`] module
//! for the dispatch rules and the `ECPIPE_GF_FORCE` override.
//!
//! # Examples
//!
//! ```
//! use gf256::Gf256;
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xca);
//! assert_eq!((a * b) / b, a);
//! assert_eq!(a + a, Gf256::ZERO);
//! ```

// `deny` rather than `forbid`: the SIMD submodules opt back in with
// `#![allow(unsafe_code)]`, and the workspace lint (`cargo run -p xtask --
// lint`) confines `unsafe` to exactly those files.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod kernels;
mod matrix;
pub mod simd;
mod tables;

pub use field::Gf256;
pub use kernels::{add_slice, mul_add_slice, mul_slice, scale_slice_in_place};
pub use matrix::Matrix;
pub use simd::{active_path, KernelPath, Kernels};

/// The number of elements in GF(2^8).
pub const FIELD_SIZE: usize = 256;

/// The irreducible polynomial used for multiplication, `x^8 + x^4 + x^3 + x^2 + 1`.
pub const POLYNOMIAL: u16 = 0x11d;
