//! A single GF(2^8) field element.

// In characteristic 2, addition and subtraction ARE xor, and division is
// multiplication by the inverse — exactly what this lint flags.
#![allow(clippy::suspicious_arithmetic_impl, clippy::suspicious_op_assign_impl)]

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{raw_mul, EXP, LOG};

/// An element of GF(2^8).
///
/// Addition and subtraction are both XOR; multiplication and division use the
/// exp/log tables. Division by [`Gf256::ZERO`] panics.
///
/// # Examples
///
/// ```
/// use gf256::Gf256;
/// let a = Gf256::new(7);
/// assert_eq!(a * Gf256::ONE, a);
/// assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical generator of the multiplicative group (g = 2).
    pub const GENERATOR: Gf256 = Gf256(2);

    /// Wraps a raw byte as a field element.
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the raw byte value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    pub fn inverse(self) -> Option<Gf256> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf256(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Raises the element to the power `exp`.
    ///
    /// `0^0` is defined as `1`, matching the usual convention for Vandermonde
    /// matrix construction.
    pub fn pow(self, exp: usize) -> Gf256 {
        if exp == 0 {
            return Gf256::ONE;
        }
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let log = LOG[self.0 as usize] as usize;
        let e = (log * exp) % 255;
        Gf256(EXP[e])
    }

    /// Returns `g^i` for the canonical generator `g = 2`.
    pub fn exp(i: usize) -> Gf256 {
        Gf256(EXP[i % 255])
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    fn neg(self) -> Gf256 {
        // Characteristic 2: every element is its own additive inverse.
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(raw_mul(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Gf256) -> Gf256 {
        let inv = rhs.inverse().expect("division by zero in GF(2^8)");
        self * inv
    }
}

impl DivAssign for Gf256 {
    fn div_assign(&mut self, rhs: Gf256) {
        *self = *self / rhs;
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn additive_identity_and_self_inverse() {
        for a in 0..=255u8 {
            let a = Gf256(a);
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
        }
    }

    #[test]
    fn multiplicative_inverse() {
        assert!(Gf256::ZERO.inverse().is_none());
        for a in 1..=255u8 {
            let a = Gf256(a);
            assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in 0..=255u8 {
            let a = Gf256(a);
            let mut acc = Gf256::ONE;
            for e in 0..10 {
                assert_eq!(a.pow(e), acc, "a={a:?} e={e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn zero_pow_zero_is_one() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(3), Gf256::ZERO);
    }

    proptest! {
        #[test]
        fn mul_commutative(a in any::<u8>(), b in any::<u8>()) {
            prop_assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
        }

        #[test]
        fn mul_associative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributive(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn division_roundtrip(a in any::<u8>(), b in 1..=255u8) {
            let (a, b) = (Gf256(a), Gf256(b));
            prop_assert_eq!((a * b) / b, a);
            prop_assert_eq!((a / b) * b, a);
        }
    }
}
