//! Portable table-lookup loops.
//!
//! These are the fallback on hosts with no supported vector ISA and the
//! oracle every SIMD path is proptested against. The callers (the wrapper
//! methods on [`super::Kernels`]) have already peeled off the 0 and 1
//! coefficient fast paths, so `coeff` here is always a general element.

use crate::tables::mul_table;

pub(super) fn mul(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let row = &mul_table()[coeff as usize];
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = row[*s as usize];
    }
}

pub(super) fn mul_add(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let row = &mul_table()[coeff as usize];
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= row[*s as usize];
    }
}

pub(super) fn add(src: &[u8], dst: &mut [u8]) {
    // XOR eight bytes at a time through safe to/from_ne_bytes round trips;
    // the tail falls back to byte-at-a-time.
    let mut d_words = dst.chunks_exact_mut(8);
    let mut s_words = src.chunks_exact(8);
    for (d, s) in (&mut d_words).zip(&mut s_words) {
        let x = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in d_words
        .into_remainder()
        .iter_mut()
        .zip(s_words.remainder().iter())
    {
        *d ^= *s;
    }
}
