//! SSSE3 and AVX2 split-table kernels for x86 / x86_64.
//!
//! Both paths implement the same ISA-L scheme: the coefficient's 16-entry
//! low- and high-nibble product tables ([`crate::tables::MUL_LO`] /
//! [`crate::tables::MUL_HI`]) are loaded into vector registers once per
//! call, then each iteration computes 16 (SSSE3) or 32 (AVX2) products with
//! two byte shuffles and a XOR:
//!
//! ```text
//! prod = shuffle(lo_tbl, src & 0x0f) ^ shuffle(hi_tbl, (src >> 4) & 0x0f)
//! ```
//!
//! The safe wrappers split the input at the last full vector and hand the
//! remainder to the scalar loops, so the vector bodies only ever see
//! whole-lane lengths. This module is the designated home for `unsafe` in
//! this crate (with `simd/neon.rs`); the workspace lint enforces that and
//! the `// SAFETY:` comments below.

#![allow(unsafe_code)]

#[cfg(target_arch = "x86")]
use core::arch::x86::*;
#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

use super::{scalar, KernelPath, Kernels};
use crate::tables::{MUL_HI, MUL_LO};

pub(super) static SSSE3: Kernels = Kernels {
    path: KernelPath::Ssse3,
    mul: mul_ssse3,
    mul_add: mul_add_ssse3,
    add: add_ssse3,
};

pub(super) static AVX2: Kernels = Kernels {
    path: KernelPath::Avx2,
    mul: mul_avx2,
    mul_add: mul_add_avx2,
    add: add_avx2,
};

// ---------------------------------------------------------------- SSSE3 --

fn mul_ssse3(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 16;
    // SAFETY: these kernels are only reachable through `Kernels::for_path`,
    // which returns the SSSE3 table solely when `is_x86_feature_detected!
    // ("ssse3")` holds, so the target-feature contract is met.
    unsafe { mul_ssse3_body(coeff, &src[..split], &mut dst[..split]) };
    scalar::mul(coeff, &src[split..], &mut dst[split..]);
}

fn mul_add_ssse3(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 16;
    // SAFETY: reachable only when runtime detection confirmed SSSE3 (see
    // `Kernels::for_path`).
    unsafe { mul_add_ssse3_body(coeff, &src[..split], &mut dst[..split]) };
    scalar::mul_add(coeff, &src[split..], &mut dst[split..]);
}

fn add_ssse3(src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 16;
    // SAFETY: reachable only when runtime detection confirmed SSSE3, which
    // implies the SSE2 loads/stores used by the body.
    unsafe { add_sse2_body(&src[..split], &mut dst[..split]) };
    scalar::add(&src[split..], &mut dst[split..]);
}

/// 16-products-per-iteration multiply. `src.len()` must be a multiple of 16
/// and equal `dst.len()`; caller must have verified SSSE3 support.
// SAFETY: every load/store below is `loadu`/`storeu` (no alignment
// requirement) over `i < len` offsets with `len % 16 == 0`, so all 16-byte
// accesses stay in bounds; the table rows are `[u8; 16]` so the table loads
// are exactly in bounds too.
#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3_body(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 16, 0);
    debug_assert_eq!(src.len(), dst.len());
    let lo_tbl = _mm_loadu_si128(MUL_LO[coeff as usize].as_ptr().cast());
    let hi_tbl = _mm_loadu_si128(MUL_HI[coeff as usize].as_ptr().cast());
    let mask = _mm_set1_epi8(0x0f);
    let mut i = 0;
    while i < src.len() {
        let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
        let lo_n = _mm_and_si128(s, mask);
        let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
        let prod = _mm_xor_si128(
            _mm_shuffle_epi8(lo_tbl, lo_n),
            _mm_shuffle_epi8(hi_tbl, hi_n),
        );
        _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), prod);
        i += 16;
    }
}

/// 16-products-per-iteration multiply-accumulate; same contract as
/// [`mul_ssse3_body`].
// SAFETY: same bounds argument as `mul_ssse3_body` — unaligned 16-byte
// accesses at offsets `< len` with `len % 16 == 0`.
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_ssse3_body(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 16, 0);
    debug_assert_eq!(src.len(), dst.len());
    let lo_tbl = _mm_loadu_si128(MUL_LO[coeff as usize].as_ptr().cast());
    let hi_tbl = _mm_loadu_si128(MUL_HI[coeff as usize].as_ptr().cast());
    let mask = _mm_set1_epi8(0x0f);
    let mut i = 0;
    while i < src.len() {
        let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
        let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
        let lo_n = _mm_and_si128(s, mask);
        let hi_n = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
        let prod = _mm_xor_si128(
            _mm_shuffle_epi8(lo_tbl, lo_n),
            _mm_shuffle_epi8(hi_tbl, hi_n),
        );
        _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, prod));
        i += 16;
    }
}

/// 16-bytes-per-iteration XOR; same length contract as [`mul_ssse3_body`].
// SAFETY: unaligned 16-byte accesses at offsets `< len` with
// `len % 16 == 0`; only SSE2 instructions are used.
#[target_feature(enable = "sse2")]
unsafe fn add_sse2_body(src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 16, 0);
    debug_assert_eq!(src.len(), dst.len());
    let mut i = 0;
    while i < src.len() {
        let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
        let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
        _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, s));
        i += 16;
    }
}

// ----------------------------------------------------------------- AVX2 --

fn mul_avx2(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 32;
    // SAFETY: reachable only when runtime detection confirmed AVX2 (see
    // `Kernels::for_path`).
    unsafe { mul_avx2_body(coeff, &src[..split], &mut dst[..split]) };
    scalar::mul(coeff, &src[split..], &mut dst[split..]);
}

fn mul_add_avx2(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 32;
    // SAFETY: reachable only when runtime detection confirmed AVX2 (see
    // `Kernels::for_path`).
    unsafe { mul_add_avx2_body(coeff, &src[..split], &mut dst[..split]) };
    scalar::mul_add(coeff, &src[split..], &mut dst[split..]);
}

fn add_avx2(src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 32;
    // SAFETY: reachable only when runtime detection confirmed AVX2 (see
    // `Kernels::for_path`).
    unsafe { add_avx2_body(&src[..split], &mut dst[..split]) };
    scalar::add(&src[split..], &mut dst[split..]);
}

/// 32-products-per-iteration multiply. `src.len()` must be a multiple of 32
/// and equal `dst.len()`; caller must have verified AVX2 support.
///
/// `vpshufb` shuffles within each 128-bit lane, so broadcasting the same
/// 16-entry table to both lanes makes the 256-bit shuffle behave as two
/// independent copies of the SSSE3 lookup.
// SAFETY: unaligned 32-byte accesses (`loadu`/`storeu`) at offsets `< len`
// with `len % 32 == 0` stay in bounds; table rows are `[u8; 16]`, matching
// the 128-bit broadcast loads exactly.
#[target_feature(enable = "avx2")]
unsafe fn mul_avx2_body(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 32, 0);
    debug_assert_eq!(src.len(), dst.len());
    let lo_tbl =
        _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO[coeff as usize].as_ptr().cast()));
    let hi_tbl =
        _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI[coeff as usize].as_ptr().cast()));
    let mask = _mm256_set1_epi8(0x0f);
    let mut i = 0;
    while i < src.len() {
        let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
        let lo_n = _mm256_and_si256(s, mask);
        let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
        let prod = _mm256_xor_si256(
            _mm256_shuffle_epi8(lo_tbl, lo_n),
            _mm256_shuffle_epi8(hi_tbl, hi_n),
        );
        _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), prod);
        i += 32;
    }
}

/// 32-products-per-iteration multiply-accumulate; same contract as
/// [`mul_avx2_body`].
// SAFETY: same bounds argument as `mul_avx2_body`.
#[target_feature(enable = "avx2")]
unsafe fn mul_add_avx2_body(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 32, 0);
    debug_assert_eq!(src.len(), dst.len());
    let lo_tbl =
        _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_LO[coeff as usize].as_ptr().cast()));
    let hi_tbl =
        _mm256_broadcastsi128_si256(_mm_loadu_si128(MUL_HI[coeff as usize].as_ptr().cast()));
    let mask = _mm256_set1_epi8(0x0f);
    let mut i = 0;
    while i < src.len() {
        let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
        let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
        let lo_n = _mm256_and_si256(s, mask);
        let hi_n = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
        let prod = _mm256_xor_si256(
            _mm256_shuffle_epi8(lo_tbl, lo_n),
            _mm256_shuffle_epi8(hi_tbl, hi_n),
        );
        _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, prod));
        i += 32;
    }
}

/// 32-bytes-per-iteration XOR; same contract as [`mul_avx2_body`].
// SAFETY: unaligned 32-byte accesses at offsets `< len` with
// `len % 32 == 0`.
#[target_feature(enable = "avx2")]
unsafe fn add_avx2_body(src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 32, 0);
    debug_assert_eq!(src.len(), dst.len());
    let mut i = 0;
    while i < src.len() {
        let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
        let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
        _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
        i += 32;
    }
}
