//! Runtime-dispatched vectorized slice kernels.
//!
//! The repair hot loop is `partial[j] ^= a_i * B_i[j]` over whole slices.
//! A scalar 64 KiB table lookup moves about one byte per load; the ISA-L
//! technique instead splits each coefficient's 256-entry product table into
//! two 16-entry nibble tables (`tables::MUL_LO` / `tables::MUL_HI`) that
//! fit a vector register, so a single byte
//! shuffle (`pshufb` on x86, `vtbl` on aarch64) computes 16–32 products per
//! instruction.
//!
//! The kernel path is selected once per process, on first use:
//!
//! | ISA      | path                         | selected when                |
//! |----------|------------------------------|------------------------------|
//! | x86/-64  | [`KernelPath::Avx2`]         | `avx2` detected at runtime   |
//! | x86/-64  | [`KernelPath::Ssse3`]        | `ssse3` detected, no AVX2    |
//! | aarch64  | [`KernelPath::Neon`]         | always (NEON is baseline)    |
//! | any      | [`KernelPath::Scalar`]       | fallback and proptest oracle |
//!
//! Set `ECPIPE_GF_FORCE=scalar|ssse3|avx2|neon` to pin a specific path —
//! forcing a path the host cannot run (or an unknown name) panics on first
//! kernel use rather than silently falling back, so a CI matrix never
//! believes it tested a path it did not. Tests can instead address every
//! supported path directly through [`Kernels::for_path`].
//!
//! All `unsafe` in this crate lives in the per-ISA submodules of this
//! module (`simd/x86.rs`, `simd/neon.rs`); `cargo run -p xtask -- lint`
//! rejects `unsafe` anywhere else in the workspace and requires a
//! `// SAFETY:` comment on every block here.

use std::sync::OnceLock;

use crate::Gf256;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86;

#[cfg(target_arch = "aarch64")]
mod neon;

mod scalar;

/// Which vectorized implementation backs the slice kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum KernelPath {
    /// Portable table-lookup loops; always available, and the oracle the
    /// SIMD paths are proptested against.
    Scalar,
    /// 128-bit `pshufb` split-table kernels (x86/x86_64 with SSSE3).
    Ssse3,
    /// 256-bit `vpshufb` split-table kernels (x86/x86_64 with AVX2).
    Avx2,
    /// 128-bit `vtbl` split-table kernels (aarch64; NEON is baseline there).
    Neon,
}

impl KernelPath {
    /// The lower-case name used by `ECPIPE_GF_FORCE` and in reports.
    pub fn name(&self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Ssse3 => "ssse3",
            KernelPath::Avx2 => "avx2",
            KernelPath::Neon => "neon",
        }
    }

    /// Parses an `ECPIPE_GF_FORCE` value.
    pub fn parse(name: &str) -> Option<KernelPath> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelPath::Scalar),
            "ssse3" => Some(KernelPath::Ssse3),
            "avx2" => Some(KernelPath::Avx2),
            "neon" => Some(KernelPath::Neon),
            _ => None,
        }
    }

    /// Whether this host can execute the path.
    pub fn supported(&self) -> bool {
        match self {
            KernelPath::Scalar => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelPath::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelPath::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            KernelPath::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every path this host can execute, fastest first.
    pub fn supported_paths() -> Vec<KernelPath> {
        [
            KernelPath::Avx2,
            KernelPath::Ssse3,
            KernelPath::Neon,
            KernelPath::Scalar,
        ]
        .into_iter()
        .filter(KernelPath::supported)
        .collect()
    }
}

impl std::fmt::Display for KernelPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.name())
    }
}

/// One implementation of the four slice kernels.
///
/// The bulk entry points ([`crate::mul_slice`] and friends) delegate to
/// [`Kernels::active`]; tests address a specific path through
/// [`Kernels::for_path`] regardless of what the process-wide selection
/// picked.
pub struct Kernels {
    path: KernelPath,
    // The raw per-path loops. Coefficient fast paths (0 and 1) and length
    // checks are handled once in the wrapper methods below, so the loops
    // only ever see a general coefficient.
    mul: fn(u8, &[u8], &mut [u8]),
    mul_add: fn(u8, &[u8], &mut [u8]),
    add: fn(&[u8], &mut [u8]),
}

static SCALAR: Kernels = Kernels {
    path: KernelPath::Scalar,
    mul: scalar::mul,
    mul_add: scalar::mul_add,
    add: scalar::add,
};

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

impl Kernels {
    /// The process-wide kernel selection: the best supported path, or the
    /// one `ECPIPE_GF_FORCE` pins. Selected once, on first use.
    ///
    /// # Panics
    ///
    /// Panics if `ECPIPE_GF_FORCE` names an unknown kernel or one this host
    /// cannot execute — an explicit override must never silently fall back.
    pub fn active() -> &'static Kernels {
        ACTIVE.get_or_init(|| {
            let path = match std::env::var("ECPIPE_GF_FORCE") {
                Ok(value) if !value.is_empty() => {
                    let path = KernelPath::parse(&value).unwrap_or_else(|| {
                        panic!(
                            "ECPIPE_GF_FORCE={value:?} names no kernel \
                             (expected scalar|ssse3|avx2|neon)"
                        )
                    });
                    assert!(
                        path.supported(),
                        "ECPIPE_GF_FORCE={} but this host cannot execute that path \
                         (supported: {})",
                        path.name(),
                        KernelPath::supported_paths()
                            .iter()
                            .map(KernelPath::name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    path
                }
                _ => *KernelPath::supported_paths()
                    .first()
                    .expect("scalar is always supported"),
            };
            Kernels::for_path(path).expect("selection checked support")
        })
    }

    /// The kernels for one specific path, if this host supports it. The
    /// scalar path is always available.
    pub fn for_path(path: KernelPath) -> Option<&'static Kernels> {
        if !path.supported() {
            return None;
        }
        match path {
            KernelPath::Scalar => Some(&SCALAR),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelPath::Ssse3 => Some(&x86::SSSE3),
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            KernelPath::Avx2 => Some(&x86::AVX2),
            #[cfg(target_arch = "aarch64")]
            KernelPath::Neon => Some(&neon::NEON),
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    /// Which path these kernels implement.
    pub fn path(&self) -> KernelPath {
        self.path
    }

    /// `dst[j] = coeff * src[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn mul_slice(&self, coeff: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "mul_slice: src and dst must have equal length"
        );
        if coeff.is_zero() {
            dst.fill(0);
        } else if coeff == Gf256::ONE {
            dst.copy_from_slice(src);
        } else {
            (self.mul)(coeff.value(), src, dst);
        }
    }

    /// `dst[j] ^= coeff * src[j]` (multiply-accumulate).
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn mul_add_slice(&self, coeff: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "mul_add_slice: src and dst must have equal length"
        );
        if coeff.is_zero() {
            return;
        }
        if coeff == Gf256::ONE {
            (self.add)(src, dst);
        } else {
            (self.mul_add)(coeff.value(), src, dst);
        }
    }

    /// `dst[j] ^= src[j]` (plain XOR accumulate).
    ///
    /// # Panics
    ///
    /// Panics if `dst` and `src` have different lengths.
    pub fn add_slice(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "add_slice: src and dst must have equal length"
        );
        (self.add)(src, dst);
    }

    /// `data[j] = coeff * data[j]` in place.
    pub fn scale_slice_in_place(&self, coeff: Gf256, data: &mut [u8]) {
        if coeff == Gf256::ONE {
            return;
        }
        if coeff.is_zero() {
            data.fill(0);
            return;
        }
        // The `mul` loops take distinct src/dst slices, which an in-place
        // scale cannot provide without aliasing. Rather than duplicating
        // every vector loop in an in-place variant, stage through a small
        // stack buffer: it stays in L1 and the vector kernels are shared.
        let mut tmp = [0u8; 1024];
        let mut offset = 0;
        while offset < data.len() {
            let chunk = (data.len() - offset).min(tmp.len());
            (self.mul)(
                coeff.value(),
                &data[offset..offset + chunk],
                &mut tmp[..chunk],
            );
            data[offset..offset + chunk].copy_from_slice(&tmp[..chunk]);
            offset += chunk;
        }
    }
}

/// The path the process-wide selection resolved to (selecting it now if
/// this is the first kernel use).
pub fn active_path() -> KernelPath {
    Kernels::active().path()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported_and_first_fallback() {
        assert!(KernelPath::Scalar.supported());
        let paths = KernelPath::supported_paths();
        assert_eq!(paths.last(), Some(&KernelPath::Scalar));
        // Every supported path resolves to kernels reporting that path.
        for path in paths {
            assert_eq!(Kernels::for_path(path).unwrap().path(), path);
        }
    }

    #[test]
    fn parse_accepts_known_names_case_insensitively() {
        assert_eq!(KernelPath::parse("scalar"), Some(KernelPath::Scalar));
        assert_eq!(KernelPath::parse(" AVX2 "), Some(KernelPath::Avx2));
        assert_eq!(KernelPath::parse("Ssse3"), Some(KernelPath::Ssse3));
        assert_eq!(KernelPath::parse("neon"), Some(KernelPath::Neon));
        assert_eq!(KernelPath::parse("sse9"), None);
        for path in KernelPath::supported_paths() {
            assert_eq!(KernelPath::parse(path.name()), Some(path));
        }
    }

    #[test]
    fn unsupported_paths_yield_no_kernels() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        assert!(Kernels::for_path(KernelPath::Neon).is_none());
        #[cfg(target_arch = "aarch64")]
        assert!(Kernels::for_path(KernelPath::Avx2).is_none());
    }

    #[test]
    fn active_selection_is_supported() {
        let active = Kernels::active();
        assert!(active.path().supported());
        // The selection is sticky: a second call returns the same kernels.
        assert!(std::ptr::eq(active, Kernels::active()));
    }

    #[test]
    fn scale_matches_mul_on_every_path() {
        for path in KernelPath::supported_paths() {
            let kernels = Kernels::for_path(path).unwrap();
            // Cross the 1 KiB staging buffer inside scale_slice_in_place.
            let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
            for coeff in [0u8, 1, 2, 0x1d, 0xfe] {
                let mut scaled = data.clone();
                kernels.scale_slice_in_place(Gf256::new(coeff), &mut scaled);
                let mut expected = vec![0u8; data.len()];
                kernels.mul_slice(Gf256::new(coeff), &data, &mut expected);
                assert_eq!(scaled, expected, "path {path} coeff {coeff}");
            }
        }
    }
}
