//! NEON split-table kernels for aarch64.
//!
//! Same ISA-L scheme as the x86 paths (see `simd/x86.rs`): the
//! coefficient's two 16-entry nibble tables are loaded into vector
//! registers and `vqtbl1q_u8` looks up 16 products per iteration. NEON is
//! baseline on aarch64, so no runtime detection is needed, but the kernels
//! still go through the same dispatch table for uniformity. This module is
//! one of the two designated homes for `unsafe` in this crate; the
//! workspace lint enforces that and the `// SAFETY:` comments below.

#![allow(unsafe_code)]

use core::arch::aarch64::*;

use super::{scalar, KernelPath, Kernels};
use crate::tables::{MUL_HI, MUL_LO};

pub(super) static NEON: Kernels = Kernels {
    path: KernelPath::Neon,
    mul: mul_neon,
    mul_add: mul_add_neon,
    add: add_neon,
};

fn mul_neon(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 16;
    // SAFETY: NEON is part of the aarch64 baseline, and the body only
    // performs in-bounds unaligned accesses (see its SAFETY comment).
    unsafe { mul_neon_body(coeff, &src[..split], &mut dst[..split]) };
    scalar::mul(coeff, &src[split..], &mut dst[split..]);
}

fn mul_add_neon(coeff: u8, src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 16;
    // SAFETY: NEON is part of the aarch64 baseline; in-bounds accesses only.
    unsafe { mul_add_neon_body(coeff, &src[..split], &mut dst[..split]) };
    scalar::mul_add(coeff, &src[split..], &mut dst[split..]);
}

fn add_neon(src: &[u8], dst: &mut [u8]) {
    let split = src.len() - src.len() % 16;
    // SAFETY: NEON is part of the aarch64 baseline; in-bounds accesses only.
    unsafe { add_neon_body(&src[..split], &mut dst[..split]) };
    scalar::add(&src[split..], &mut dst[split..]);
}

/// 16-products-per-iteration multiply. `src.len()` must be a multiple of 16
/// and equal `dst.len()`.
// SAFETY: `vld1q_u8`/`vst1q_u8` have no alignment requirement and every
// access is at an offset `i < len` with `len % 16 == 0`, so all 16-byte
// accesses stay in bounds; the table rows are `[u8; 16]`, matching the
// table loads exactly.
#[target_feature(enable = "neon")]
unsafe fn mul_neon_body(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 16, 0);
    debug_assert_eq!(src.len(), dst.len());
    let lo_tbl = vld1q_u8(MUL_LO[coeff as usize].as_ptr());
    let hi_tbl = vld1q_u8(MUL_HI[coeff as usize].as_ptr());
    let mask = vdupq_n_u8(0x0f);
    let mut i = 0;
    while i < src.len() {
        let s = vld1q_u8(src.as_ptr().add(i));
        let lo_n = vandq_u8(s, mask);
        let hi_n = vshrq_n_u8::<4>(s);
        let prod = veorq_u8(vqtbl1q_u8(lo_tbl, lo_n), vqtbl1q_u8(hi_tbl, hi_n));
        vst1q_u8(dst.as_mut_ptr().add(i), prod);
        i += 16;
    }
}

/// 16-products-per-iteration multiply-accumulate; same contract as
/// [`mul_neon_body`].
// SAFETY: same bounds argument as `mul_neon_body`.
#[target_feature(enable = "neon")]
unsafe fn mul_add_neon_body(coeff: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 16, 0);
    debug_assert_eq!(src.len(), dst.len());
    let lo_tbl = vld1q_u8(MUL_LO[coeff as usize].as_ptr());
    let hi_tbl = vld1q_u8(MUL_HI[coeff as usize].as_ptr());
    let mask = vdupq_n_u8(0x0f);
    let mut i = 0;
    while i < src.len() {
        let s = vld1q_u8(src.as_ptr().add(i));
        let d = vld1q_u8(dst.as_ptr().add(i));
        let lo_n = vandq_u8(s, mask);
        let hi_n = vshrq_n_u8::<4>(s);
        let prod = veorq_u8(vqtbl1q_u8(lo_tbl, lo_n), vqtbl1q_u8(hi_tbl, hi_n));
        vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, prod));
        i += 16;
    }
}

/// 16-bytes-per-iteration XOR; same contract as [`mul_neon_body`].
// SAFETY: same bounds argument as `mul_neon_body`.
#[target_feature(enable = "neon")]
unsafe fn add_neon_body(src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len() % 16, 0);
    debug_assert_eq!(src.len(), dst.len());
    let mut i = 0;
    while i < src.len() {
        let s = vld1q_u8(src.as_ptr().add(i));
        let d = vld1q_u8(dst.as_ptr().add(i));
        vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, s));
        i += 16;
    }
}
