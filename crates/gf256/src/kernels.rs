//! Bulk slice kernels.
//!
//! During a repair every helper combines its locally stored slice `B_i` into
//! a partial sum using a decoding coefficient `a_i`:
//! `partial += a_i * B_i`. These kernels are the byte-level inner loops for
//! that operation, working on whole slices at a time.
//!
//! Each call delegates to the process-wide kernel selection made by
//! [`crate::simd::Kernels::active`] — vectorized split-table loops where the
//! host supports them, the portable scalar loops otherwise. See the
//! [`crate::simd`] module for the dispatch rules and the
//! `ECPIPE_GF_FORCE` override.

use crate::simd::Kernels;
use crate::Gf256;

/// Computes `dst[j] = coeff * src[j]` for every byte.
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn mul_slice(coeff: Gf256, src: &[u8], dst: &mut [u8]) {
    Kernels::active().mul_slice(coeff, src, dst);
}

/// Computes `dst[j] ^= coeff * src[j]` for every byte (multiply-accumulate).
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn mul_add_slice(coeff: Gf256, src: &[u8], dst: &mut [u8]) {
    Kernels::active().mul_add_slice(coeff, src, dst);
}

/// Computes `dst[j] ^= src[j]` for every byte (plain XOR accumulate).
///
/// # Panics
///
/// Panics if `dst` and `src` have different lengths.
pub fn add_slice(src: &[u8], dst: &mut [u8]) {
    Kernels::active().add_slice(src, dst);
}

/// Scales a slice in place: `data[j] = coeff * data[j]`.
pub fn scale_slice_in_place(coeff: Gf256, data: &mut [u8]) {
    Kernels::active().scale_slice_in_place(coeff, data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_mul(coeff: u8, src: &[u8]) -> Vec<u8> {
        src.iter()
            .map(|&s| (Gf256(coeff) * Gf256(s)).value())
            .collect()
    }

    #[test]
    fn mul_slice_zero_coeff_clears() {
        let src = vec![1, 2, 3, 4];
        let mut dst = vec![9, 9, 9, 9];
        mul_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![0, 0, 0, 0]);
    }

    #[test]
    fn mul_slice_one_coeff_copies() {
        let src = vec![1, 2, 3, 4];
        let mut dst = vec![0; 4];
        mul_slice(Gf256::ONE, &src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mul_slice_length_mismatch_panics() {
        let src = vec![1, 2, 3];
        let mut dst = vec![0; 4];
        mul_slice(Gf256::ONE, &src, &mut dst);
    }

    #[test]
    fn mul_add_slice_zero_coeff_is_noop() {
        let src = vec![1, 2, 3, 4];
        let mut dst = vec![5, 6, 7, 8];
        mul_add_slice(Gf256::ZERO, &src, &mut dst);
        assert_eq!(dst, vec![5, 6, 7, 8]);
    }

    proptest! {
        #[test]
        fn mul_slice_matches_scalar(coeff in any::<u8>(), src in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut dst = vec![0u8; src.len()];
            mul_slice(Gf256(coeff), &src, &mut dst);
            prop_assert_eq!(dst, scalar_mul(coeff, &src));
        }

        #[test]
        fn mul_add_matches_scalar(coeff in any::<u8>(),
                                  src in proptest::collection::vec(any::<u8>(), 0..128),
                                  seed in any::<u8>()) {
            let mut dst = vec![seed; src.len()];
            mul_add_slice(Gf256(coeff), &src, &mut dst);
            let expected: Vec<u8> = scalar_mul(coeff, &src)
                .iter()
                .map(|&v| v ^ seed)
                .collect();
            prop_assert_eq!(dst, expected);
        }

        #[test]
        fn add_slice_is_self_inverse(src in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut dst = vec![0u8; src.len()];
            add_slice(&src, &mut dst);
            add_slice(&src, &mut dst);
            prop_assert!(dst.iter().all(|&b| b == 0));
        }

        #[test]
        fn scale_in_place_matches_mul_slice(coeff in any::<u8>(), src in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut a = src.clone();
            scale_slice_in_place(Gf256(coeff), &mut a);
            let mut b = vec![0u8; src.len()];
            mul_slice(Gf256(coeff), &src, &mut b);
            prop_assert_eq!(a, b);
        }
    }
}
