//! Compile-time generated exp/log tables for GF(2^8).

use crate::POLYNOMIAL;

/// `EXP[i] = g^i` where `g = 2` is a generator of the multiplicative group.
///
/// The table is doubled (512 entries) so that `EXP[log(a) + log(b)]` never
/// needs a modular reduction of the exponent sum.
pub const EXP: [u8; 512] = generate_exp();

/// `LOG[a] = i` such that `g^i = a`, for `a != 0`. `LOG[0]` is unused and set
/// to 0.
pub const LOG: [u8; 256] = generate_log();

const fn generate_exp() -> [u8; 512] {
    let mut table = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLYNOMIAL;
        }
        i += 1;
    }
    // Index 510 and 511 are never reached by log(a)+log(b) <= 508, but fill
    // them with consistent values anyway.
    table[510] = table[0];
    table[511] = table[1];
    table
}

const fn generate_log() -> [u8; 256] {
    let exp = generate_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// Split low-nibble multiplication tables: `MUL_LO[c][x] = c * x` for
/// `x < 16`. Together with [`MUL_HI`] this is the ISA-L decomposition
/// `c * b = MUL_LO[c][b & 0xf] ^ MUL_HI[c][b >> 4]`, which is exactly the
/// shape a 16-entry byte-shuffle instruction (`pshufb` / `vtbl`) can look up
/// sixteen (or thirty-two) bytes at a time. The SIMD kernels load one row of
/// each table into a vector register per coefficient.
pub const MUL_LO: [[u8; 16]; 256] = generate_nibble_table(false);

/// Split high-nibble multiplication tables: `MUL_HI[c][x] = c * (x << 4)`
/// for `x < 16`. See [`MUL_LO`].
pub const MUL_HI: [[u8; 16]; 256] = generate_nibble_table(true);

const fn generate_nibble_table(high: bool) -> [[u8; 16]; 256] {
    let mut table = [[0u8; 16]; 256];
    let mut c = 0;
    while c < 256 {
        let mut x = 0;
        while x < 16 {
            let operand = if high { (x as u8) << 4 } else { x as u8 };
            table[c][x] = raw_mul(c as u8, operand);
            x += 1;
        }
        c += 1;
    }
    table
}

/// Full 256x256 multiplication table. Looked up by the bulk kernels so the
/// per-byte inner loop is a single indexed load.
pub fn mul_table() -> &'static [[u8; 256]; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([[0u8; 256]; 256]);
        for a in 0..256usize {
            for b in 0..256usize {
                t[a][b] = raw_mul(a as u8, b as u8);
            }
        }
        t
    })
}

/// Scalar multiplication via the exp/log tables.
pub const fn raw_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let exp = EXP;
    let log = LOG;
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Carry-free "schoolbook" multiplication used as an oracle.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut product: u8 = 0;
        while b != 0 {
            if b & 1 != 0 {
                product ^= a;
            }
            let high = a & 0x80 != 0;
            a <<= 1;
            if high {
                a ^= (POLYNOMIAL & 0xff) as u8;
            }
            b >>= 1;
        }
        product
    }

    #[test]
    fn exp_log_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(EXP[LOG[a as usize] as usize], a);
        }
    }

    #[test]
    fn exp_table_halves_agree() {
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn raw_mul_matches_schoolbook() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(raw_mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_table_matches_raw_mul() {
        let t = mul_table();
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(t[a as usize][b as usize], raw_mul(a, b));
            }
        }
    }

    #[test]
    fn nibble_tables_decompose_raw_mul() {
        for c in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    MUL_LO[c as usize][(b & 0x0f) as usize] ^ MUL_HI[c as usize][(b >> 4) as usize],
                    raw_mul(c, b),
                    "c={c} b={b}"
                );
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g = 2 must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        for &e in EXP.iter().take(255) {
            let v = e as usize;
            assert!(!seen[v], "repeated element before order 255");
            seen[v] = true;
        }
        assert!(!seen[0]);
    }
}
