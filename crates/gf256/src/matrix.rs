//! Dense matrices over GF(2^8).
//!
//! Used to build encoding matrices (Vandermonde / Cauchy) and to invert
//! square sub-matrices during decoding and single-block repair coefficient
//! derivation.

use std::fmt;

use crate::Gf256;

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of the given size.
    pub fn identity(size: usize) -> Self {
        let mut m = Matrix::zero(size, size);
        for i in 0..size {
            m.set(i, i, Gf256::ONE);
        }
        m
    }

    /// Creates a matrix from a row-major vector of raw byte values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_bytes(rows: usize, cols: usize, data: &[u8]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Matrix {
            rows,
            cols,
            data: data.iter().map(|&b| Gf256(b)).collect(),
        }
    }

    /// Builds an `rows x cols` Vandermonde matrix: entry `(i, j) = i^j`.
    ///
    /// Any `cols x cols` sub-matrix formed from distinct rows is invertible,
    /// which is the property Reed-Solomon coding relies on.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, Gf256::new(i as u8).pow(j));
            }
        }
        m
    }

    /// Builds a Cauchy matrix with entry `(i, j) = 1 / (x_i + y_j)` where
    /// `x_i = i + cols` and `y_j = j`.
    ///
    /// Every square sub-matrix of a Cauchy matrix is invertible.
    ///
    /// # Panics
    ///
    /// Panics if `rows + cols > 256` (the x and y sets must be disjoint).
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(
            rows + cols <= 256,
            "Cauchy matrix requires rows + cols <= 256"
        );
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let x = Gf256::new((i + cols) as u8);
                let y = Gf256::new(j as u8);
                m.set(i, j, (x + y).inverse().expect("x_i + y_j is never zero"));
            }
        }
        m
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Gf256 {
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: Gf256) {
        self.data[row * self.cols + col] = value;
    }

    /// Returns a row as a slice.
    pub fn row(&self, row: usize) -> &[Gf256] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns a new matrix containing only the selected rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            for j in 0..self.cols {
                m.set(dst, j, self.get(src, j));
            }
        }
        m
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must match");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = Gf256::ZERO;
                for t in 0..self.cols {
                    acc += self.get(i, t) * rhs.get(t, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Multiplies the matrix by a column vector.
    ///
    /// # Panics
    ///
    /// Panics if `vec.len() != cols`.
    pub fn mul_vec(&self, vec: &[Gf256]) -> Vec<Gf256> {
        assert_eq!(vec.len(), self.cols, "vector length must match columns");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(vec)
                    .fold(Gf256::ZERO, |acc, (&a, &x)| acc + a * x)
            })
            .collect()
    }

    /// Inverts a square matrix with Gauss-Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn invert(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot row with a non-zero entry in this column.
            let pivot = (col..n).find(|&r| !work.get(r, col).is_zero())?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let pivot_val = work.get(col, col);
            let pivot_inv = pivot_val.inverse()?;
            work.scale_row(col, pivot_inv);
            inv.scale_row(col, pivot_inv);
            // Eliminate this column from every other row.
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = work.get(row, col);
                if factor.is_zero() {
                    continue;
                }
                work.add_scaled_row(col, row, factor);
                inv.add_scaled_row(col, row, factor);
            }
        }
        Some(inv)
    }

    /// Builds a systematic encoding matrix from an arbitrary full-rank
    /// generator: transforms `G` so that its top `cols x cols` block is the
    /// identity, preserving the MDS property of Vandermonde generators.
    ///
    /// Returns `None` if the top square block cannot be made invertible.
    pub fn into_systematic(self) -> Option<Matrix> {
        let k = self.cols;
        let top: Vec<usize> = (0..k).collect();
        let top_block = self.select_rows(&top);
        let inv = top_block.invert()?;
        Some(self.mul(&inv))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let tmp = self.get(a, j);
            self.set(a, j, self.get(b, j));
            self.set(b, j, tmp);
        }
    }

    fn scale_row(&mut self, row: usize, factor: Gf256) {
        for j in 0..self.cols {
            let v = self.get(row, j);
            self.set(row, j, v * factor);
        }
    }

    /// `row[dst] += factor * row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, factor: Gf256) {
        for j in 0..self.cols {
            let v = self.get(dst, j) + factor * self.get(src, j);
            self.set(dst, j, v);
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_times_anything_is_unchanged() {
        let m = Matrix::vandermonde(4, 3);
        let id = Matrix::identity(4);
        assert_eq!(id.mul(&m), m);
    }

    #[test]
    fn invert_identity() {
        let id = Matrix::identity(5);
        assert_eq!(id.invert().unwrap(), id);
    }

    #[test]
    fn invert_roundtrip_cauchy() {
        for n in 1..=8 {
            let m = Matrix::cauchy(n, n);
            let inv = m.invert().expect("Cauchy square matrices are invertible");
            assert_eq!(m.mul(&inv), Matrix::identity(n));
            assert_eq!(inv.mul(&m), Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, Gf256::ONE);
        m.set(1, 0, Gf256::ONE);
        assert!(m.invert().is_none());
    }

    #[test]
    fn vandermonde_sub_matrices_invertible() {
        // Every k x k sub-matrix of the systematic generator built from a
        // Vandermonde matrix must be invertible (MDS property check for a
        // handful of row selections).
        let n = 6;
        let k = 4;
        let g = Matrix::vandermonde(n, k).into_systematic().unwrap();
        let selections = [
            vec![0, 1, 2, 3],
            vec![2, 3, 4, 5],
            vec![0, 2, 4, 5],
            vec![1, 3, 4, 5],
        ];
        for sel in selections {
            let sub = g.select_rows(&sel);
            assert!(sub.invert().is_some(), "selection {sel:?} not invertible");
        }
    }

    #[test]
    fn systematic_top_is_identity() {
        let g = Matrix::vandermonde(7, 5).into_systematic().unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expected = if i == j { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(g.get(i, j), expected);
            }
        }
    }

    #[test]
    fn select_rows_preserves_order() {
        let m = Matrix::vandermonde(5, 3);
        let s = m.select_rows(&[4, 1]);
        assert_eq!(s.row(0), m.row(4));
        assert_eq!(s.row(1), m.row(1));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = Matrix::cauchy(3, 4);
        let v = vec![Gf256(1), Gf256(2), Gf256(3), Gf256(4)];
        let mut col = Matrix::zero(4, 1);
        for (i, &x) in v.iter().enumerate() {
            col.set(i, 0, x);
        }
        let prod = m.mul(&col);
        let vec_prod = m.mul_vec(&v);
        for (i, &expected) in vec_prod.iter().enumerate() {
            assert_eq!(prod.get(i, 0), expected);
        }
    }

    proptest! {
        #[test]
        fn cauchy_inversion_roundtrip(n in 1usize..10) {
            let m = Matrix::cauchy(n, n);
            let inv = m.invert().unwrap();
            prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
        }

        #[test]
        fn mul_associative(a_rows in 1usize..5, inner in 1usize..5, b_cols in 1usize..5,
                           seed in any::<u64>()) {
            // Random matrices built from the seed; associativity of matrix
            // multiplication over the field.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 32) as u8
            };
            let mut a = Matrix::zero(a_rows, inner);
            let mut b = Matrix::zero(inner, b_cols);
            let mut c = Matrix::zero(b_cols, 3);
            for i in 0..a_rows { for j in 0..inner { a.set(i, j, Gf256(next())); } }
            for i in 0..inner { for j in 0..b_cols { b.set(i, j, Gf256(next())); } }
            for i in 0..b_cols { for j in 0..3 { c.set(i, j, Gf256(next())); } }
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }
    }
}
