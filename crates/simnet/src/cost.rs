//! Non-network cost model: disk I/O, coding computation and request
//! overheads.
//!
//! The paper's analysis (§3.2) neglects computation and disk I/O because the
//! network is the bottleneck at 1 Gb/s, but its evaluation shows two places
//! where they matter: (i) very small slices suffer from the per-request
//! overhead of issuing many slice transfers (Figure 8(a)), and (ii) at
//! 10 Gb/s the computation and disk overheads become visible
//! (Figure 8(i)). [`CostModel`] captures those effects.

use serde::{Deserialize, Serialize};

/// Per-node, non-network costs applied to the tasks of a repair schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Sequential disk read throughput in bytes per second.
    pub disk_read_bps: f64,
    /// Erasure-coding computation throughput (GF(2^8) multiply-accumulate)
    /// in bytes per second.
    pub compute_bps: f64,
    /// Fixed overhead added to every network transfer, in seconds. Models
    /// the per-slice request/queueing overhead that penalises very small
    /// slices.
    pub per_transfer_overhead: f64,
    /// Fixed cost of establishing a connection between two processes, in
    /// seconds. Charged once per connection-setup task (the HDFS-3 original
    /// repair path pays this k times, §6.3).
    pub connection_setup: f64,
}

impl CostModel {
    /// A model where only the network matters: infinite disk and compute
    /// rates and no request overhead. Useful for verifying the timeslot
    /// analysis of §3.
    pub fn network_only() -> Self {
        CostModel {
            disk_read_bps: f64::INFINITY,
            compute_bps: f64::INFINITY,
            per_transfer_overhead: 0.0,
            connection_setup: 0.0,
        }
    }

    /// The paper's local-cluster machines: SATA disks around 180 MB/s,
    /// single-core XOR/GF throughput in the GB/s range, and a small
    /// per-request overhead measured from Figure 8(a)'s small-slice penalty.
    pub fn paper_local_cluster() -> Self {
        CostModel {
            disk_read_bps: 180.0e6,
            compute_bps: 2.5e9,
            per_transfer_overhead: 20.0e-6,
            connection_setup: 2.0e-3,
        }
    }

    /// EC2 t2.micro instances: slower virtualised I/O and CPU, higher
    /// request overhead.
    pub fn ec2_t2_micro() -> Self {
        CostModel {
            disk_read_bps: 100.0e6,
            compute_bps: 1.0e9,
            per_transfer_overhead: 50.0e-6,
            connection_setup: 5.0e-3,
        }
    }

    /// Time to read `bytes` from the local disk.
    pub fn disk_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.disk_read_bps
    }

    /// Time to run the coding computation over `bytes`.
    pub fn compute_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.compute_bps
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_local_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_only_has_no_overheads() {
        let m = CostModel::network_only();
        assert_eq!(m.disk_time(1 << 30), 0.0);
        assert_eq!(m.compute_time(1 << 30), 0.0);
        assert_eq!(m.per_transfer_overhead, 0.0);
    }

    #[test]
    fn paper_model_disk_slower_than_compute() {
        let m = CostModel::paper_local_cluster();
        assert!(m.disk_time(1 << 26) > m.compute_time(1 << 26));
    }

    #[test]
    fn default_is_paper_local_cluster() {
        assert_eq!(CostModel::default(), CostModel::paper_local_cluster());
    }
}
