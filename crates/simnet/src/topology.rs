//! Cluster topologies: flat, rack-based, and geo-distributed.

use serde::{Deserialize, Serialize};

/// Identifier of a node in the simulated cluster.
pub type NodeId = usize;

/// A cluster topology: node placement (racks, regions) and link bandwidth.
///
/// Bandwidth is expressed in bytes per second. The effective bandwidth of a
/// transfer from `src` to `dst` is the minimum of:
///
/// * the sender's uplink capacity,
/// * the receiver's downlink capacity,
/// * the point-to-point limit, which is the inner-rack bandwidth when both
///   nodes share a rack, the cross-rack bandwidth otherwise, or an explicit
///   per-pair entry when one was set (geo topologies, edge limits).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    num_nodes: usize,
    rack: Vec<usize>,
    region: Vec<usize>,
    uplink: Vec<f64>,
    downlink: Vec<f64>,
    inner_rack_bw: f64,
    cross_rack_bw: f64,
    /// Optional aggregate capacity of each rack's link to the network core.
    /// When set, all cross-rack traffic entering or leaving one rack shares
    /// this capacity (the "limited cross-rack link bandwidth" of §2.3).
    rack_link_capacity: Option<f64>,
    /// Optional explicit per-directed-pair bandwidth overriding the rack
    /// rule. Row-major `num_nodes x num_nodes`; `None` entries fall back to
    /// the rack rule.
    pair_bw: Vec<Option<f64>>,
}

impl Topology {
    /// A flat, homogeneous cluster: every link (and every NIC) has the same
    /// bandwidth. This models the paper's default local testbed where the
    /// 1 Gb/s switch bandwidth is the constraint.
    pub fn flat(num_nodes: usize, bandwidth: f64) -> Self {
        assert!(num_nodes > 0, "topology must have at least one node");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Topology {
            num_nodes,
            rack: vec![0; num_nodes],
            region: vec![0; num_nodes],
            uplink: vec![bandwidth; num_nodes],
            downlink: vec![bandwidth; num_nodes],
            inner_rack_bw: bandwidth,
            cross_rack_bw: bandwidth,
            rack_link_capacity: None,
            pair_bw: vec![None; num_nodes * num_nodes],
        }
    }

    /// A rack-based data center: `nodes_per_rack[r]` nodes in rack `r`,
    /// abundant inner-rack bandwidth and a limited cross-rack bandwidth
    /// (§2.3, §4.2).
    pub fn rack_based(nodes_per_rack: &[usize], inner_rack_bw: f64, cross_rack_bw: f64) -> Self {
        assert!(!nodes_per_rack.is_empty(), "at least one rack required");
        assert!(inner_rack_bw > 0.0 && cross_rack_bw > 0.0);
        let num_nodes: usize = nodes_per_rack.iter().sum();
        assert!(num_nodes > 0, "topology must have at least one node");
        let mut rack = Vec::with_capacity(num_nodes);
        for (r, &count) in nodes_per_rack.iter().enumerate() {
            rack.extend(std::iter::repeat_n(r, count));
        }
        let nic = inner_rack_bw.max(cross_rack_bw);
        Topology {
            num_nodes,
            rack,
            region: vec![0; num_nodes],
            uplink: vec![nic; num_nodes],
            downlink: vec![nic; num_nodes],
            inner_rack_bw,
            cross_rack_bw,
            rack_link_capacity: Some(cross_rack_bw),
            pair_bw: vec![None; num_nodes * num_nodes],
        }
    }

    /// A geo-distributed deployment: `nodes_per_region[r]` nodes in region
    /// `r` and a `regions x regions` bandwidth matrix where entry `(a, b)` is
    /// the bandwidth from region `a` to region `b` (the diagonal is the
    /// inner-region bandwidth), as in the paper's Table 1.
    pub fn geo(nodes_per_region: &[usize], region_bw: &[Vec<f64>]) -> Self {
        let regions = nodes_per_region.len();
        assert_eq!(region_bw.len(), regions, "bandwidth matrix must be square");
        assert!(region_bw.iter().all(|r| r.len() == regions));
        let num_nodes: usize = nodes_per_region.iter().sum();
        assert!(num_nodes > 0, "topology must have at least one node");
        let mut region = Vec::with_capacity(num_nodes);
        for (r, &count) in nodes_per_region.iter().enumerate() {
            region.extend(std::iter::repeat_n(r, count));
        }
        let max_bw = region_bw
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0f64, f64::max);
        let mut topo = Topology {
            num_nodes,
            rack: region.clone(),
            region,
            uplink: vec![max_bw; num_nodes],
            downlink: vec![max_bw; num_nodes],
            inner_rack_bw: max_bw,
            cross_rack_bw: max_bw,
            rack_link_capacity: None,
            pair_bw: vec![None; num_nodes * num_nodes],
        };
        for src in 0..num_nodes {
            for dst in 0..num_nodes {
                if src == dst {
                    continue;
                }
                let bw = region_bw[topo.region[src]][topo.region[dst]];
                topo.pair_bw[src * num_nodes + dst] = Some(bw);
            }
        }
        topo
    }

    /// Builds a topology from an explicit per-directed-pair bandwidth matrix
    /// (row-major, `num_nodes x num_nodes`). Diagonal entries are ignored.
    pub fn from_matrix(num_nodes: usize, matrix: &[f64]) -> Self {
        assert_eq!(matrix.len(), num_nodes * num_nodes, "matrix size mismatch");
        let max_bw = matrix.iter().copied().fold(0.0f64, f64::max);
        let mut topo = Topology::flat(num_nodes, max_bw.max(1.0));
        for src in 0..num_nodes {
            for dst in 0..num_nodes {
                if src != dst {
                    topo.pair_bw[src * num_nodes + dst] = Some(matrix[src * num_nodes + dst]);
                }
            }
        }
        topo
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The rack a node belongs to.
    pub fn rack_of(&self, node: NodeId) -> usize {
        self.rack[node]
    }

    /// The region a node belongs to.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region[node]
    }

    /// The number of distinct racks.
    pub fn num_racks(&self) -> usize {
        self.rack.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Sets the NIC uplink and downlink capacity of one node.
    pub fn set_node_bandwidth(&mut self, node: NodeId, uplink: f64, downlink: f64) {
        assert!(uplink > 0.0 && downlink > 0.0);
        self.uplink[node] = uplink;
        self.downlink[node] = downlink;
    }

    /// Overrides the bandwidth of one directed link.
    pub fn set_link_bandwidth(&mut self, src: NodeId, dst: NodeId, bandwidth: f64) {
        assert!(bandwidth > 0.0);
        assert_ne!(src, dst, "no self links");
        self.pair_bw[src * self.num_nodes + dst] = Some(bandwidth);
    }

    /// Limits the bandwidth of every link *into* `node` (the "edge bandwidth"
    /// of §4.1 / Figure 8(g), where a requestor sits at the network edge).
    pub fn limit_ingress(&mut self, node: NodeId, bandwidth: f64) {
        for src in 0..self.num_nodes {
            if src != node {
                self.set_link_bandwidth(src, node, bandwidth);
            }
        }
    }

    /// The sender-side NIC capacity of a node.
    pub fn uplink(&self, node: NodeId) -> f64 {
        self.uplink[node]
    }

    /// The receiver-side NIC capacity of a node.
    pub fn downlink(&self, node: NodeId) -> f64 {
        self.downlink[node]
    }

    /// The point-to-point bandwidth limit of the directed link `src -> dst`,
    /// before the sender/receiver NIC capacities are applied: the explicit
    /// per-pair entry if one was set, otherwise the inner- or cross-rack
    /// bandwidth.
    pub fn pair_limit(&self, src: NodeId, dst: NodeId) -> f64 {
        assert_ne!(src, dst, "no self transfers");
        self.pair_bw[src * self.num_nodes + dst].unwrap_or({
            if self.rack[src] == self.rack[dst] {
                self.inner_rack_bw
            } else {
                self.cross_rack_bw
            }
        })
    }

    /// The aggregate capacity of each rack's connection to the network core,
    /// if the topology models one (rack-based topologies do; flat and geo
    /// topologies do not).
    pub fn rack_link_capacity(&self) -> Option<f64> {
        self.rack_link_capacity
    }

    /// Overrides the aggregate per-rack core-link capacity.
    pub fn set_rack_link_capacity(&mut self, capacity: Option<f64>) {
        if let Some(c) = capacity {
            assert!(c > 0.0, "rack link capacity must be positive");
        }
        self.rack_link_capacity = capacity;
    }

    /// The effective bandwidth of a transfer from `src` to `dst`: the pair
    /// limit capped by the sender uplink, the receiver downlink and (for
    /// cross-rack transfers) the rack core-link capacity.
    pub fn bandwidth(&self, src: NodeId, dst: NodeId) -> f64 {
        let mut bw = self
            .pair_limit(src, dst)
            .min(self.uplink[src])
            .min(self.downlink[dst]);
        if self.is_cross_rack(src, dst) {
            if let Some(cap) = self.rack_link_capacity {
                bw = bw.min(cap);
            }
        }
        bw
    }

    /// Whether a transfer between two nodes crosses a rack boundary.
    pub fn is_cross_rack(&self, src: NodeId, dst: NodeId) -> bool {
        self.rack[src] != self.rack[dst]
    }

    /// Link weights for weighted path selection (§4.3): the inverse of the
    /// link bandwidth, so higher weight means a slower link.
    pub fn link_weight(&self, src: NodeId, dst: NodeId) -> f64 {
        1.0 / self.bandwidth(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GBIT, MBIT};

    #[test]
    fn flat_topology_is_homogeneous() {
        let topo = Topology::flat(4, GBIT);
        for src in 0..4 {
            for dst in 0..4 {
                if src != dst {
                    assert_eq!(topo.bandwidth(src, dst), GBIT);
                }
            }
        }
        assert_eq!(topo.num_racks(), 1);
    }

    #[test]
    fn rack_topology_limits_cross_rack() {
        let topo = Topology::rack_based(&[3, 3, 3], 10.0 * GBIT, 500.0 * MBIT);
        assert_eq!(topo.num_nodes(), 9);
        assert_eq!(topo.num_racks(), 3);
        assert_eq!(topo.rack_of(0), 0);
        assert_eq!(topo.rack_of(5), 1);
        assert!(!topo.is_cross_rack(0, 2));
        assert!(topo.is_cross_rack(0, 3));
        assert_eq!(topo.bandwidth(0, 1), 10.0 * GBIT);
        assert_eq!(topo.bandwidth(0, 4), 500.0 * MBIT);
    }

    #[test]
    fn geo_topology_uses_region_matrix() {
        let bw = vec![
            vec![500.0 * MBIT, 60.0 * MBIT],
            vec![55.0 * MBIT, 700.0 * MBIT],
        ];
        let topo = Topology::geo(&[2, 2], &bw);
        assert_eq!(topo.region_of(1), 0);
        assert_eq!(topo.region_of(2), 1);
        assert_eq!(topo.bandwidth(0, 1), 500.0 * MBIT);
        assert_eq!(topo.bandwidth(0, 2), 60.0 * MBIT);
        assert_eq!(topo.bandwidth(2, 0), 55.0 * MBIT);
    }

    #[test]
    fn ingress_limit_overrides_links_into_node() {
        let mut topo = Topology::flat(5, GBIT);
        topo.limit_ingress(4, 100.0 * MBIT);
        assert_eq!(topo.bandwidth(0, 4), 100.0 * MBIT);
        assert_eq!(topo.bandwidth(4, 0), GBIT);
        assert_eq!(topo.bandwidth(0, 1), GBIT);
    }

    #[test]
    fn nic_capacity_caps_pair_bandwidth() {
        let mut topo = Topology::flat(3, 10.0 * GBIT);
        topo.set_node_bandwidth(2, GBIT, GBIT);
        assert_eq!(topo.bandwidth(0, 2), GBIT);
        assert_eq!(topo.bandwidth(2, 0), GBIT);
        assert_eq!(topo.bandwidth(0, 1), 10.0 * GBIT);
    }

    #[test]
    fn link_weight_is_inverse_bandwidth() {
        let topo = Topology::flat(2, 2.0);
        assert!((topo.link_weight(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no self transfers")]
    fn self_transfer_panics() {
        Topology::flat(2, GBIT).bandwidth(1, 1);
    }
}
