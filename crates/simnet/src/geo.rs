//! Geo-distributed Amazon EC2 topologies seeded from the paper's Table 1.
//!
//! The paper deploys two clusters of 16 helpers each: four EC2 instances in
//! each of four regions in North America (California, Canada, Ohio, Oregon)
//! and in Asia (Mumbai, Seoul, Singapore, Tokyo). Table 1 reports an `iperf`
//! measurement of the inner- and cross-region bandwidth. These functions
//! rebuild that environment as a [`Topology`], optionally perturbing the
//! bandwidth values to model the fluctuation the paper observes across runs.

use rand::prelude::*;

use crate::topology::Topology;
use crate::MBIT;

/// Region names of the North America cluster, in Table 1 order.
pub const NORTH_AMERICA_REGIONS: [&str; 4] = ["California", "Canada", "Ohio", "Oregon"];

/// Region names of the Asia cluster, in Table 1 order.
pub const ASIA_REGIONS: [&str; 4] = ["Mumbai", "Seoul", "Singapore", "Tokyo"];

/// Table 1(a): North America inter-region bandwidth in Mb/s. Entry `(i, j)`
/// is the measured bandwidth from region `i` to region `j`.
pub const NORTH_AMERICA_MBPS: [[f64; 4]; 4] = [
    [501.3, 57.2, 44.1, 299.9],
    [55.3, 732.0, 63.3, 48.0],
    [46.3, 65.7, 332.5, 95.6],
    [297.8, 50.2, 93.6, 250.1],
];

/// Table 1(b): Asia inter-region bandwidth in Mb/s.
pub const ASIA_MBPS: [[f64; 4]; 4] = [
    [624.8, 62.3, 39.5, 37.7],
    [63.8, 265.7, 86.1, 183.2],
    [41.5, 88.1, 493.0, 49.1],
    [39.7, 181.0, 46.9, 489.1],
];

fn matrix_to_bps(mbps: &[[f64; 4]; 4]) -> Vec<Vec<f64>> {
    mbps.iter()
        .map(|row| row.iter().map(|v| v * MBIT).collect())
        .collect()
}

/// Builds the North America EC2 cluster: `nodes_per_region` helpers in each
/// of the four regions, with Table 1(a) bandwidth.
pub fn north_america(nodes_per_region: usize) -> Topology {
    Topology::geo(&[nodes_per_region; 4], &matrix_to_bps(&NORTH_AMERICA_MBPS))
}

/// Builds the Asia EC2 cluster with Table 1(b) bandwidth.
pub fn asia(nodes_per_region: usize) -> Topology {
    Topology::geo(&[nodes_per_region; 4], &matrix_to_bps(&ASIA_MBPS))
}

/// Applies multiplicative noise to every link of a geo topology, modelling
/// the bandwidth fluctuation the paper reports across EC2 runs. Each directed
/// link bandwidth is scaled by a factor drawn uniformly from
/// `[1 - variance, 1 + variance]`.
///
/// # Panics
///
/// Panics if `variance` is not within `[0, 1)`.
pub fn with_fluctuation(topo: &Topology, variance: f64, seed: u64) -> Topology {
    assert!((0.0..1.0).contains(&variance), "variance must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = topo.clone();
    let n = topo.num_nodes();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let factor = 1.0 + rng.gen_range(-variance..=variance);
            out.set_link_bandwidth(src, dst, topo.bandwidth(src, dst) * factor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn north_america_matches_table1() {
        let topo = north_america(4);
        assert_eq!(topo.num_nodes(), 16);
        // Node 0 is in California, node 4 in Canada.
        let expected = 57.2 * MBIT;
        assert!((topo.bandwidth(0, 4) - expected).abs() < 1.0);
        // Inner-region links use the diagonal.
        assert!((topo.bandwidth(0, 1) - 501.3 * MBIT).abs() < 1.0);
    }

    #[test]
    fn asia_matches_table1() {
        let topo = asia(4);
        // Mumbai -> Singapore is the slowest Asia link in Table 1.
        assert!((topo.bandwidth(0, 8) - 39.5 * MBIT).abs() < 1.0);
    }

    #[test]
    fn cross_region_slower_than_inner_region_on_average() {
        // Table 1 has one exception (Oregon -> California is faster than
        // Oregon's inner-region link), so compare the averages as the paper
        // does ("inner-region bandwidth is in general more abundant").
        for matrix in [NORTH_AMERICA_MBPS, ASIA_MBPS] {
            let inner: f64 = (0..4).map(|i| matrix[i][i]).sum::<f64>() / 4.0;
            let mut cross_sum = 0.0;
            let mut cross_count = 0;
            for (i, row) in matrix.iter().enumerate() {
                for (j, &bw) in row.iter().enumerate() {
                    if i != j {
                        cross_sum += bw;
                        cross_count += 1;
                    }
                }
            }
            assert!(inner > 2.0 * cross_sum / cross_count as f64);
        }
    }

    #[test]
    fn fluctuation_is_bounded_and_deterministic() {
        let topo = north_america(4);
        let noisy1 = with_fluctuation(&topo, 0.2, 42);
        let noisy2 = with_fluctuation(&topo, 0.2, 42);
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                let base = topo.bandwidth(src, dst);
                let a = noisy1.bandwidth(src, dst);
                assert!(a >= base * 0.8 - 1.0 && a <= base * 1.2 + 1.0);
                assert_eq!(a, noisy2.bandwidth(src, dst));
            }
        }
    }

    #[test]
    #[should_panic(expected = "variance must be in [0, 1)")]
    fn invalid_variance_panics() {
        with_fluctuation(&north_america(1), 1.5, 0);
    }
}
