//! The discrete-event scheduler.
//!
//! A repair is expressed as a [`Schedule`]: a DAG of tasks (network
//! transfers, disk reads, compute steps, connection setups) with explicit
//! dependencies. The [`Simulator`] executes the schedule against a
//! [`Topology`](crate::Topology) and a [`CostModel`](crate::CostModel) and
//! reports the makespan plus traffic statistics.
//!
//! Resources are modelled at three levels:
//!
//! * per node — an uplink NIC, a downlink NIC, a disk and a CPU;
//! * per directed node pair — the point-to-point link (its `pair_limit`);
//! * per rack — an optional aggregate core-link capacity shared by all
//!   cross-rack traffic entering or leaving the rack.
//!
//! Each resource serves tasks one at a time, in submission order (FIFO), and
//! a transfer occupies every resource it touches for `bytes / that
//! resource's rate`. Its own completion takes `bytes / effective_bandwidth`
//! (the minimum of all applicable rates) plus the per-transfer request
//! overhead. This reproduces the paper's timeslot accounting (`k` blocks
//! converging on one requestor serialise on its downlink; slice transfers
//! over distinct links proceed in parallel) while still letting several slow
//! point-to-point flows share one fast NIC, which is what the cyclic repair
//! extension (§4.1) exploits.

use std::collections::HashMap;

use crate::cost::CostModel;
use crate::topology::{NodeId, Topology};

/// Identifier of a task within a schedule (its submission index).
pub type TaskId = usize;

/// The kind of work a task performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskKind {
    /// Move `bytes` from `src` to `dst` over the network.
    Transfer {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Read `bytes` from the local disk of `node`.
    DiskRead {
        /// The node performing the read.
        node: NodeId,
        /// Bytes read.
        bytes: u64,
    },
    /// Run the coding computation over `bytes` on `node`.
    Compute {
        /// The node performing the computation.
        node: NodeId,
        /// Bytes processed.
        bytes: u64,
    },
    /// Establish a connection from `node` (charged the fixed
    /// connection-setup cost on that node's CPU).
    ConnectionSetup {
        /// The node initiating the connection.
        node: NodeId,
    },
    /// A fixed delay on a node's CPU (e.g. a metadata lookup or the extra
    /// latency of reading through a storage-system routine).
    Delay {
        /// The node that is busy.
        node: NodeId,
        /// The delay in seconds.
        seconds: f64,
    },
}

/// A single task plus its dependencies (tasks that must finish first).
#[derive(Debug, Clone)]
pub struct Task {
    /// The task identifier (submission index).
    pub id: TaskId,
    /// What the task does.
    pub kind: TaskKind,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
}

/// A dependency graph of tasks describing one repair (or any other
/// distributed operation).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    tasks: Vec<Task>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    fn push(&mut self, kind: TaskKind, deps: &[TaskId]) -> TaskId {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependencies must refer to earlier tasks");
        }
        self.tasks.push(Task {
            id,
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// Adds a network transfer task.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a dependency refers to a later task.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, deps: &[TaskId]) -> TaskId {
        assert_ne!(src, dst, "transfers must cross the network");
        self.push(TaskKind::Transfer { src, dst, bytes }, deps)
    }

    /// Adds a local disk read task.
    pub fn disk_read(&mut self, node: NodeId, bytes: u64, deps: &[TaskId]) -> TaskId {
        self.push(TaskKind::DiskRead { node, bytes }, deps)
    }

    /// Adds a coding computation task.
    pub fn compute(&mut self, node: NodeId, bytes: u64, deps: &[TaskId]) -> TaskId {
        self.push(TaskKind::Compute { node, bytes }, deps)
    }

    /// Adds a connection-setup task.
    pub fn connection_setup(&mut self, node: NodeId, deps: &[TaskId]) -> TaskId {
        self.push(TaskKind::ConnectionSetup { node }, deps)
    }

    /// Adds a fixed delay on a node's CPU.
    pub fn delay(&mut self, node: NodeId, seconds: f64, deps: &[TaskId]) -> TaskId {
        assert!(seconds >= 0.0, "delay must be non-negative");
        self.push(TaskKind::Delay { node, seconds }, deps)
    }

    /// Appends all tasks of another schedule, remapping its task ids. Returns
    /// the id offset applied to the appended tasks (their new id is
    /// `old id + offset`).
    ///
    /// Used to combine the per-stripe schedules of a multi-stripe repair
    /// (full-node recovery) into one simulation so that shared helpers and
    /// requestors contend for the same resources.
    pub fn append(&mut self, other: &Schedule) -> usize {
        let offset = self.tasks.len();
        for task in other.tasks() {
            let deps: Vec<TaskId> = task.deps.iter().map(|d| d + offset).collect();
            self.tasks.push(Task {
                id: task.id + offset,
                kind: task.kind,
                deps,
            });
        }
        offset
    }

    /// Merges several independent schedules by interleaving their tasks
    /// round-robin (task 0 of every schedule, then task 1 of every schedule,
    /// and so on), remapping task ids.
    ///
    /// The simulator serves each resource in submission order, so
    /// interleaving keeps independent jobs (e.g. the per-stripe repairs of a
    /// full-node recovery) progressing concurrently instead of queueing one
    /// whole job behind another.
    pub fn interleave(schedules: &[Schedule]) -> Schedule {
        let mut combined = Schedule::new();
        let mut id_maps: Vec<Vec<TaskId>> = schedules.iter().map(|s| vec![0; s.len()]).collect();
        let longest = schedules.iter().map(|s| s.len()).max().unwrap_or(0);
        for idx in 0..longest {
            for (si, schedule) in schedules.iter().enumerate() {
                if idx >= schedule.len() {
                    continue;
                }
                let task = &schedule.tasks()[idx];
                let new_id = combined.tasks.len();
                let deps: Vec<TaskId> = task.deps.iter().map(|&d| id_maps[si][d]).collect();
                combined.tasks.push(Task {
                    id: new_id,
                    kind: task.kind,
                    deps,
                });
                id_maps[si][idx] = new_id;
            }
        }
        combined
    }

    /// The number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the schedule has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks in submission order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }
}

/// The outcome of simulating a schedule.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last task, in seconds.
    pub makespan: f64,
    /// Per-task finish times, indexed by [`TaskId`].
    pub finish_times: Vec<f64>,
    /// Total bytes moved over the network.
    pub network_bytes: u64,
    /// Bytes moved over cross-rack links.
    pub cross_rack_bytes: u64,
    /// Bytes carried by the most-loaded directed link.
    pub max_link_bytes: u64,
    /// Bytes carried by each directed link that was used.
    pub link_bytes: HashMap<(NodeId, NodeId), u64>,
}

impl SimReport {
    /// The number of distinct directed links used.
    pub fn links_used(&self) -> usize {
        self.link_bytes.len()
    }

    /// A simple load-imbalance metric: bytes on the most-loaded link divided
    /// by the mean bytes per used link (1.0 means perfectly balanced).
    pub fn link_imbalance(&self) -> f64 {
        if self.link_bytes.is_empty() {
            return 1.0;
        }
        let mean = self.network_bytes as f64 / self.link_bytes.len() as f64;
        self.max_link_bytes as f64 / mean
    }
}

/// Simulates schedules against a topology and a cost model.
#[derive(Debug, Clone)]
pub struct Simulator {
    topology: Topology,
    cost: CostModel,
}

impl Simulator {
    /// Creates a simulator.
    pub fn new(topology: Topology, cost: CostModel) -> Self {
        Simulator { topology, cost }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Runs a schedule to completion and reports timing and traffic.
    pub fn run(&self, schedule: &Schedule) -> SimReport {
        let n = self.topology.num_nodes();
        let racks = self.topology.num_racks();
        let mut uplink_free = vec![0.0f64; n];
        let mut downlink_free = vec![0.0f64; n];
        let mut disk_free = vec![0.0f64; n];
        let mut cpu_free = vec![0.0f64; n];
        let mut pair_free: HashMap<(NodeId, NodeId), f64> = HashMap::new();
        let mut rack_up_free = vec![0.0f64; racks];
        let mut rack_down_free = vec![0.0f64; racks];
        let mut finish_times = vec![0.0f64; schedule.len()];
        let mut network_bytes = 0u64;
        let mut cross_rack_bytes = 0u64;
        let mut link_bytes: HashMap<(NodeId, NodeId), u64> = HashMap::new();

        for task in schedule.tasks() {
            let deps_ready = task
                .deps
                .iter()
                .map(|&d| finish_times[d])
                .fold(0.0f64, f64::max);
            let finish = match task.kind {
                TaskKind::Transfer { src, dst, bytes } => {
                    let cross_rack = self.topology.is_cross_rack(src, dst);
                    let rack_cap = if cross_rack {
                        self.topology.rack_link_capacity()
                    } else {
                        None
                    };
                    let pair = pair_free.entry((src, dst)).or_insert(0.0);
                    let mut start = deps_ready
                        .max(uplink_free[src])
                        .max(downlink_free[dst])
                        .max(*pair);
                    if rack_cap.is_some() {
                        start = start
                            .max(rack_up_free[self.topology.rack_of(src)])
                            .max(rack_down_free[self.topology.rack_of(dst)]);
                    }
                    // Completion is governed by the slowest element on the
                    // path; each resource is busy for bytes / its own rate
                    // plus the per-transfer request overhead (issuing many
                    // tiny slices keeps a link busy beyond the pure wire
                    // time, which is the small-slice penalty of Figure 8(a)).
                    let overhead = self.cost.per_transfer_overhead;
                    let rate = self.topology.bandwidth(src, dst);
                    let finish = start + bytes as f64 / rate + overhead;
                    uplink_free[src] = uplink_free[src]
                        .max(start + bytes as f64 / self.topology.uplink(src) + overhead);
                    downlink_free[dst] = downlink_free[dst]
                        .max(start + bytes as f64 / self.topology.downlink(dst) + overhead);
                    *pair = start + bytes as f64 / self.topology.pair_limit(src, dst) + overhead;
                    if let Some(cap) = rack_cap {
                        let busy = bytes as f64 / cap + overhead;
                        let src_rack = self.topology.rack_of(src);
                        let dst_rack = self.topology.rack_of(dst);
                        rack_up_free[src_rack] = rack_up_free[src_rack].max(start + busy);
                        rack_down_free[dst_rack] = rack_down_free[dst_rack].max(start + busy);
                    }
                    network_bytes += bytes;
                    if cross_rack {
                        cross_rack_bytes += bytes;
                    }
                    *link_bytes.entry((src, dst)).or_insert(0) += bytes;
                    finish
                }
                TaskKind::DiskRead { node, bytes } => {
                    let start = deps_ready.max(disk_free[node]);
                    let finish = start + self.cost.disk_time(bytes as usize);
                    disk_free[node] = finish;
                    finish
                }
                TaskKind::Compute { node, bytes } => {
                    let start = deps_ready.max(cpu_free[node]);
                    let finish = start + self.cost.compute_time(bytes as usize);
                    cpu_free[node] = finish;
                    finish
                }
                TaskKind::ConnectionSetup { node } => {
                    let start = deps_ready.max(cpu_free[node]);
                    let finish = start + self.cost.connection_setup;
                    cpu_free[node] = finish;
                    finish
                }
                TaskKind::Delay { node, seconds } => {
                    let start = deps_ready.max(cpu_free[node]);
                    let finish = start + seconds;
                    cpu_free[node] = finish;
                    finish
                }
            };
            finish_times[task.id] = finish;
        }

        let makespan = finish_times.iter().copied().fold(0.0f64, f64::max);
        let max_link_bytes = link_bytes.values().copied().max().unwrap_or(0);
        SimReport {
            makespan,
            finish_times,
            network_bytes,
            cross_rack_bytes,
            max_link_bytes,
            link_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GBIT;

    const MIB: u64 = 1024 * 1024;

    fn network_sim(nodes: usize, bw: f64) -> Simulator {
        Simulator::new(Topology::flat(nodes, bw), CostModel::network_only())
    }

    #[test]
    fn empty_schedule_has_zero_makespan() {
        let sim = network_sim(2, GBIT);
        let report = sim.run(&Schedule::new());
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.network_bytes, 0);
    }

    #[test]
    fn single_transfer_duration_matches_bandwidth() {
        let sim = network_sim(2, GBIT);
        let mut s = Schedule::new();
        s.transfer(0, 1, 64 * MIB, &[]);
        let report = sim.run(&s);
        let expected = (64 * MIB) as f64 / GBIT;
        assert!((report.makespan - expected).abs() < 1e-9);
    }

    #[test]
    fn transfers_to_same_destination_serialise() {
        // Two senders into one receiver share the receiver downlink.
        let sim = network_sim(3, GBIT);
        let mut s = Schedule::new();
        s.transfer(0, 2, 64 * MIB, &[]);
        s.transfer(1, 2, 64 * MIB, &[]);
        let report = sim.run(&s);
        let expected = 2.0 * (64 * MIB) as f64 / GBIT;
        assert!((report.makespan - expected).abs() < 1e-9);
    }

    #[test]
    fn transfers_on_disjoint_links_run_in_parallel() {
        let sim = network_sim(4, GBIT);
        let mut s = Schedule::new();
        s.transfer(0, 1, 64 * MIB, &[]);
        s.transfer(2, 3, 64 * MIB, &[]);
        let report = sim.run(&s);
        let expected = (64 * MIB) as f64 / GBIT;
        assert!((report.makespan - expected).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_respected() {
        let sim = network_sim(3, GBIT);
        let mut s = Schedule::new();
        let t0 = s.transfer(0, 1, 64 * MIB, &[]);
        s.transfer(1, 2, 64 * MIB, &[t0]);
        let report = sim.run(&s);
        let expected = 2.0 * (64 * MIB) as f64 / GBIT;
        assert!((report.makespan - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dependencies must refer to earlier tasks")]
    fn forward_dependency_panics() {
        let mut s = Schedule::new();
        s.transfer(0, 1, 1, &[5]);
    }

    #[test]
    fn per_transfer_overhead_is_charged() {
        let cost = CostModel {
            per_transfer_overhead: 0.5,
            ..CostModel::network_only()
        };
        let sim = Simulator::new(Topology::flat(2, GBIT), cost);
        let mut s = Schedule::new();
        s.transfer(0, 1, 0, &[]);
        let report = sim.run(&s);
        assert!((report.makespan - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_and_compute_use_separate_resources() {
        let cost = CostModel {
            disk_read_bps: 100.0,
            compute_bps: 100.0,
            per_transfer_overhead: 0.0,
            connection_setup: 0.0,
        };
        let sim = Simulator::new(Topology::flat(1, GBIT), cost);
        let mut s = Schedule::new();
        s.disk_read(0, 100, &[]);
        s.compute(0, 100, &[]);
        let report = sim.run(&s);
        // They overlap because they use different resources.
        assert!((report.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn same_resource_tasks_queue() {
        let cost = CostModel {
            disk_read_bps: 100.0,
            ..CostModel::network_only()
        };
        let sim = Simulator::new(Topology::flat(1, GBIT), cost);
        let mut s = Schedule::new();
        s.disk_read(0, 100, &[]);
        s.disk_read(0, 100, &[]);
        let report = sim.run(&s);
        assert!((report.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cross_rack_bytes_are_tracked() {
        let topo = Topology::rack_based(&[2, 2], GBIT, GBIT / 2.0);
        let sim = Simulator::new(topo, CostModel::network_only());
        let mut s = Schedule::new();
        s.transfer(0, 1, 10, &[]); // inner rack
        s.transfer(0, 2, 20, &[]); // cross rack
        let report = sim.run(&s);
        assert_eq!(report.network_bytes, 30);
        assert_eq!(report.cross_rack_bytes, 20);
        assert_eq!(report.links_used(), 2);
        assert_eq!(report.max_link_bytes, 20);
    }

    #[test]
    fn connection_setup_cost() {
        let cost = CostModel {
            connection_setup: 0.25,
            ..CostModel::network_only()
        };
        let sim = Simulator::new(Topology::flat(2, GBIT), cost);
        let mut s = Schedule::new();
        s.connection_setup(0, &[]);
        s.connection_setup(0, &[]);
        let report = sim.run(&s);
        assert!((report.makespan - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slower_link_dominates_transfer_time() {
        let mut topo = Topology::flat(3, GBIT);
        topo.set_link_bandwidth(0, 2, GBIT / 10.0);
        let sim = Simulator::new(topo, CostModel::network_only());
        let mut s = Schedule::new();
        s.transfer(0, 2, 64 * MIB, &[]);
        let report = sim.run(&s);
        let expected = (64 * MIB) as f64 / (GBIT / 10.0);
        assert!((report.makespan - expected).abs() < 1e-6);
    }
}
