//! Discrete-event cluster and network simulator.
//!
//! The paper evaluates repair schemes on a 17-machine local cluster and on
//! geo-distributed Amazon EC2 clusters. This crate is the substitute for that
//! testbed: it models storage nodes connected by links with configurable
//! bandwidth (flat, rack-based, or geo-distributed from the paper's Table 1
//! measurements), plus per-node disk and compute rates, and it simulates the
//! execution of a repair expressed as a dependency graph of slice-level
//! transfers, disk reads and compute steps.
//!
//! The simulator is deterministic: tasks are scheduled in submission order,
//! each resource (a node's uplink, downlink, disk, or CPU) serves one task at
//! a time, and a transfer's rate is the minimum of the sender's uplink, the
//! receiver's downlink and the configured point-to-point bandwidth. Because
//! every repair scheme in the paper is network-bound, this resource model is
//! enough to reproduce the timeslot behaviour the paper analyses
//! (conventional = k timeslots, PPR = ceil(log2(k+1)), repair pipelining
//! approaching 1).
//!
//! # Examples
//!
//! ```
//! use simnet::{CostModel, Schedule, Simulator, Topology};
//!
//! // Two nodes on a 1 Gb/s network; send 64 MiB from node 0 to node 1.
//! let topo = Topology::flat(2, simnet::GBIT);
//! let mut schedule = Schedule::new();
//! schedule.transfer(0, 1, 64 * 1024 * 1024, &[]);
//! let report = Simulator::new(topo, CostModel::network_only()).run(&schedule);
//! assert!((report.makespan - 0.537).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod sim;
mod topology;

pub mod geo;

pub use cost::CostModel;
pub use sim::{Schedule, SimReport, Simulator, Task, TaskId, TaskKind};
pub use topology::{NodeId, Topology};

/// One gigabit per second expressed in bytes per second.
pub const GBIT: f64 = 1e9 / 8.0;

/// One megabit per second expressed in bytes per second.
pub const MBIT: f64 = 1e6 / 8.0;
