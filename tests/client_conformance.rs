//! Conformance suite for the `EcPipe` façade's client data path, run
//! against all three transport backends: put→get roundtrips (multi-stripe
//! objects, unaligned sizes), degraded reads during node death, and range
//! reads over corrupt chunks.

use repair_pipelining::ecpipe::transport::Transport;
use repair_pipelining::ecpipe::{
    EcPipe, EcPipeBuilder, ExecStrategy, ManagerConfig, NodeHealth, ScrubConfig, StoreBackend,
    TransportChoice,
};

const BLOCK: usize = 16 * 1024;
const SLICE: usize = 2 * 1024;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 131 + seed * 17 + 5) % 251) as u8)
        .collect()
}

fn build(choice: TransportChoice, checksummed: bool, nodes: usize) -> EcPipe {
    let backend = if checksummed {
        StoreBackend::memory_checksummed(nodes)
    } else {
        StoreBackend::memory(nodes)
    };
    EcPipeBuilder::new()
        .code(6, 4)
        .block_size(BLOCK)
        .slice_size(SLICE)
        .store(backend)
        .transport(choice)
        .manager(ManagerConfig {
            workers: 2,
            dead_after_misses: 1,
            ..ManagerConfig::default()
        })
        .build()
        .expect("façade builds")
}

const BACKENDS: [TransportChoice; 3] = [
    TransportChoice::Channel,
    TransportChoice::Tcp,
    TransportChoice::Reactor,
];

/// Objects of every awkward size round-trip byte-exact, including
/// multi-stripe objects and sizes not aligned to blocks or stripes.
#[test]
fn put_get_roundtrip_on_both_backends() {
    for choice in BACKENDS {
        let pipe = build(choice, false, 9);
        let stripe_bytes = 4 * BLOCK;
        for (i, size) in [
            1,
            BLOCK - 1,
            BLOCK + 1,
            stripe_bytes,
            3 * stripe_bytes + 4321,
        ]
        .into_iter()
        .enumerate()
        {
            let name = format!("/objects/{i}");
            let data = pattern(size, i as u64);
            let meta = pipe.put(&name, &data).expect("put succeeds");
            assert_eq!(meta.size, size, "{choice:?} {name}");
            assert_eq!(meta.stripes.len(), size.div_ceil(stripe_bytes).max(1));
            assert_eq!(pipe.get(&name).expect("get succeeds"), data, "{choice:?}");
        }
        // Range reads at block and stripe boundaries of the big object.
        let data = pattern(3 * stripe_bytes + 4321, 4);
        for range in [
            0..0,
            0..1,
            BLOCK - 10..BLOCK + 10,
            stripe_bytes - 1..stripe_bytes + 1,
            2 * stripe_bytes..3 * stripe_bytes,
            data.len() - 7..data.len(),
        ] {
            assert_eq!(
                pipe.get_range("/objects/4", range.clone()).expect("range"),
                &data[range.clone()],
                "{choice:?} {range:?}"
            );
        }
        let report = pipe.shutdown();
        assert_eq!(report.failed_repairs, 0);
        assert_eq!(report.blocks_repaired, 0, "native reads repair nothing");
    }
}

/// A killed node — reported or silent — never costs a byte: reads fall
/// back to manager-prioritized degraded reads and heal the cluster.
#[test]
fn degraded_reads_survive_node_death_on_both_backends() {
    for choice in BACKENDS {
        let pipe = build(choice, false, 10);
        let data = pattern(2 * 4 * BLOCK + 999, 7);
        let meta = pipe.put("/victim", &data).expect("put succeeds");

        // Reported death: background recovery races the client read.
        let victim = pipe
            .cluster()
            .node_of(meta.stripes[0], 0)
            .expect("placed block");
        let lost = pipe.kill_node(victim);
        assert!(!lost.is_empty());
        pipe.report_node_failure(victim);
        assert_eq!(pipe.get("/victim").expect("read during recovery"), data);
        pipe.wait_idle();

        // Silent death: nobody reports it; the read itself discovers the
        // missing blocks and repairs around them.
        let silent = pipe
            .cluster()
            .node_of(meta.stripes[1], 2)
            .expect("placed block");
        assert!(!pipe.kill_node(silent).is_empty());
        assert_eq!(pipe.get("/victim").expect("read after silent death"), data);

        // Healed: a re-read moves no repair traffic at all.
        let bytes = pipe.transport().total_bytes();
        assert_eq!(pipe.get("/victim").expect("clean re-read"), data);
        assert_eq!(pipe.transport().total_bytes(), bytes, "{choice:?}");

        let report = pipe.shutdown();
        assert_eq!(report.failed_repairs, 0, "{choice:?}");
        assert!(report.degraded_wait.count > 0, "{choice:?}");
    }
}

/// Range reads over a corrupt chunk detect the rot (checksummed stores),
/// heal the block in place at degraded-read priority, and return the right
/// bytes; the store verifies clean afterwards.
#[test]
fn range_reads_heal_corrupt_chunks_on_both_backends() {
    for choice in BACKENDS {
        let pipe = build(choice, true, 9);
        let data = pattern(4 * BLOCK, 11);
        let meta = pipe.put("/rotten", &data).expect("put succeeds");

        // Flip a byte inside block 1, within the range we will read.
        let corrupt_offset = 5000;
        pipe.corrupt(meta.stripes[0], 1, corrupt_offset)
            .expect("inject corruption");
        assert!(pipe.verify_block(meta.stripes[0], 1).is_err());

        // The range covers the corrupt chunk: the read must detect the rot
        // (not serve poisoned bytes), heal in place, and return the truth.
        let range = BLOCK + 4096..BLOCK + 8192;
        assert_eq!(
            pipe.get_range("/rotten", range.clone())
                .expect("range read"),
            &data[range],
            "{choice:?}"
        );
        assert!(
            pipe.verify_block(meta.stripes[0], 1).is_ok(),
            "{choice:?}: the heal must refresh the checksums in place"
        );
        // Healed in place: the placement did not move.
        let holder = pipe.cluster().node_of(meta.stripes[0], 1).expect("placed");
        let block = repair_pipelining::ecc::stripe::BlockId {
            stripe: meta.stripes[0],
            index: 1,
        };
        assert!(pipe.cluster().store(holder).contains(block));

        // A corrupt chunk *outside* every read range stays undetected by
        // ranged reads but is caught by a scrub.
        pipe.corrupt(meta.stripes[0], 2, BLOCK - 100)
            .expect("inject corruption");
        assert_eq!(
            pipe.get_range("/rotten", 2 * BLOCK..2 * BLOCK + 64)
                .expect("range"),
            &data[2 * BLOCK..2 * BLOCK + 64]
        );
        let cycle = pipe.scrub(&ScrubConfig::default());
        assert_eq!(cycle.corrupt.len(), 1, "{choice:?}");
        assert!(cycle.still_corrupt.is_empty(), "{choice:?}");

        let report = pipe.shutdown();
        assert_eq!(report.failed_repairs, 0, "{choice:?}");
    }
}

/// On a cluster with no spare nodes (`nodes == n`), a repaired block cannot
/// take over its placement (every live node already holds a block of the
/// stripe, and the coordinator refuses to co-locate two). Reads must still
/// serve the repaired copy — found by scanning — instead of failing or
/// re-repairing forever.
#[test]
fn reads_survive_node_death_with_no_spare_nodes() {
    let pipe = build(TransportChoice::Channel, false, 6);
    let data = pattern(4 * BLOCK + 123, 13);
    let meta = pipe
        .put("/minimal", &data)
        .expect("put on a minimal cluster");
    let victim = pipe
        .cluster()
        .node_of(meta.stripes[0], 0)
        .expect("placed block");
    pipe.kill_node(victim);
    pipe.report_node_failure(victim);
    pipe.wait_idle();
    // Two reads: the repaired-but-unplaceable copy must be found both
    // times, and the second read must not pay another repair.
    assert_eq!(pipe.get("/minimal").expect("first read"), data);
    let bytes = pipe.transport().total_bytes();
    assert_eq!(pipe.get("/minimal").expect("second read"), data);
    assert_eq!(
        pipe.transport().total_bytes(),
        bytes,
        "a stray repaired copy must be served, not re-repaired"
    );
    let report = pipe.shutdown();
    assert_eq!(report.failed_repairs, 0);
}

/// The façade surfaces node health, and `put` refuses to place stripes when
/// too few nodes are alive.
#[test]
fn put_respects_liveness() {
    let pipe = build(TransportChoice::Channel, false, 7);
    pipe.kill_node(6);
    pipe.report_node_failure(6);
    assert_eq!(pipe.node_health(6), NodeHealth::Dead);
    // 6 live nodes are exactly n: still placeable.
    let data = pattern(BLOCK, 3);
    let meta = pipe.put("/tight", &data).expect("placeable on 6 nodes");
    assert!(!pipe
        .cluster()
        .placement(meta.stripes[0])
        .expect("placement recorded")
        .contains(&6));
    pipe.kill_node(5);
    pipe.report_node_failure(5);
    pipe.wait_idle();
    assert!(pipe.put("/too-tight", &data).is_err());
    pipe.shutdown();
}

/// Strategy choice is honored end to end: degraded reads execute with the
/// configured strategy on either backend.
#[test]
fn strategies_serve_degraded_reads() {
    for strategy in [ExecStrategy::Conventional, ExecStrategy::BlockPipeline] {
        let pipe = EcPipeBuilder::new()
            .code(6, 4)
            .block_size(BLOCK)
            .slice_size(SLICE)
            .store(StoreBackend::memory(9))
            .strategy(strategy)
            .build()
            .expect("façade builds");
        let data = pattern(4 * BLOCK + 17, 21);
        let meta = pipe.put("/s", &data).expect("put");
        pipe.erase_block(meta.stripes[0], 0);
        assert_eq!(pipe.get("/s").expect("degraded read"), data, "{strategy}");
        assert_eq!(pipe.shutdown().blocks_repaired, 1);
    }
}
