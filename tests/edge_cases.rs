//! Regression tests for degenerate inputs: the smallest legal codes, blocks
//! and paths must repair correctly rather than panic, and clearly-invalid
//! inputs must surface typed errors.

use std::sync::Arc;

use repair_pipelining::dfs::{RepairPath, SimulatedDfs, SystemProfile};
use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::{CodeError, ErasureCode, Lrc, ReedSolomon};
use repair_pipelining::ecpipe::exec::{execute_multi, ExecStrategy};
use repair_pipelining::ecpipe::transport::ChannelTransport;
use repair_pipelining::ecpipe::{Cluster, Coordinator, StoreBackend};
use repair_pipelining::gf256::Matrix;
use repair_pipelining::repair::weighted_path::{optimal_path, WeightMatrix};
use repair_pipelining::repair::{ppr, SingleRepairJob};
use repair_pipelining::simnet;

/// The smallest legal MDS code, `(2, 1)`: a repair job with a single helper
/// must work through every execution strategy (the pipeline degenerates to a
/// direct copy).
#[test]
fn k1_repair_through_every_strategy() {
    let code = Arc::new(ReedSolomon::new(2, 1).unwrap());
    let layout = SliceLayout::new(4096, 512);
    let data = vec![(0..4096).map(|i| (i % 251) as u8).collect::<Vec<u8>>()];
    let coded = code.encode(&data).unwrap();

    for failed in [0usize, 1] {
        let mut coordinator = Coordinator::new(code.clone(), layout);
        let cluster = Cluster::new(StoreBackend::memory(4)).unwrap();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        cluster.erase_block(stripe, failed);
        for strategy in [
            ExecStrategy::Conventional,
            ExecStrategy::Ppr,
            ExecStrategy::RepairPipelining,
            ExecStrategy::BlockPipeline,
        ] {
            let repaired = cluster
                .repair(&mut coordinator, stripe, failed, 3, strategy)
                .unwrap();
            assert_eq!(repaired, coded[failed], "failed={failed} {strategy:?}");
        }
    }
}

/// A single-helper job is a valid degenerate path for every scheduler.
#[test]
fn k1_schedules_are_well_formed() {
    let job = SingleRepairJob::new(vec![0], 1, SliceLayout::new(1024, 256));
    assert_eq!(job.k(), 1);
    // None of the schedule builders may panic on a one-hop path.
    let _ = repair_pipelining::repair::rp::schedule(&job);
    let _ = repair_pipelining::repair::rp::schedule_pipe_b(&job);
    let _ = repair_pipelining::repair::rp::schedule_pipe_s(&job);
    let _ = repair_pipelining::repair::conventional::schedule(&job);
    let _ = repair_pipelining::repair::ppr::schedule(&job);
    let _ = repair_pipelining::repair::cyclic::schedule(&job);
}

/// PPR aggregation over a single helper is one direct delivery.
#[test]
fn ppr_rounds_single_helper() {
    let rounds = ppr::aggregation_rounds(&[4], 9);
    let transfers: usize = rounds.iter().map(|r| r.len()).sum();
    assert_eq!(transfers, 1);
    assert!(rounds
        .iter()
        .flatten()
        .any(|&(src, dst)| src == 4 && dst == 9));
}

/// One-byte blocks: the layout collapses to a single one-byte slice and the
/// whole runtime still round-trips the bytes.
#[test]
fn one_byte_block_repair() {
    let code = Arc::new(ReedSolomon::new(5, 3).unwrap());
    let layout = SliceLayout::new(1, 1);
    assert_eq!(layout.slice_count(), 1);
    assert_eq!(layout.slice_len(0), 1);

    let data = vec![vec![7u8], vec![11u8], vec![13u8]];
    let coded = code.encode(&data).unwrap();
    let mut coordinator = Coordinator::new(code.clone(), layout);
    let cluster = Cluster::new(StoreBackend::memory(7)).unwrap();
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    cluster.erase_block(stripe, 2);
    let repaired = cluster
        .repair(
            &mut coordinator,
            stripe,
            2,
            6,
            ExecStrategy::RepairPipelining,
        )
        .unwrap();
    assert_eq!(repaired, coded[2]);
}

/// Slice sizes larger than the block are clamped rather than producing
/// zero-byte slices.
#[test]
fn oversized_slice_is_clamped_not_zero() {
    let layout = SliceLayout::new(10, 1 << 20);
    assert_eq!(layout.slice_count(), 1);
    assert_eq!(layout.slice_range(0), 0..10);
    let block = vec![42u8; 10];
    assert_eq!(layout.join(&layout.split(&block)), block);
}

/// Zero-sized layouts are rejected loudly (documented panic), not by
/// producing empty slices that would wedge the pipeline.
#[test]
#[should_panic(expected = "block size must be positive")]
fn zero_block_size_is_rejected() {
    let _ = SliceLayout::new(0, 1024);
}

#[test]
#[should_panic(expected = "slice size must be positive")]
fn zero_slice_size_is_rejected() {
    let _ = SliceLayout::new(1024, 0);
}

/// Singular matrices must report `None` from inversion, never panic, and the
/// codes must translate that into a typed error.
#[test]
fn singular_matrix_inversion_returns_none() {
    // Two identical rows: rank 1.
    let singular = Matrix::from_bytes(2, 2, &[3, 5, 3, 5]);
    assert!(singular.invert().is_none());
    // The all-zero matrix.
    assert!(Matrix::zero(4, 4).invert().is_none());
}

/// Asking for a decode with fewer than `k` blocks is an error, not a panic.
#[test]
fn insufficient_blocks_is_a_typed_error() {
    let rs = ReedSolomon::new(6, 4).unwrap();
    let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
    let coded = rs.encode(&data).unwrap();
    let few: Vec<(usize, Vec<u8>)> = (0..3).map(|i| (i, coded[i].clone())).collect();
    match rs.decode(&few) {
        Err(CodeError::NotEnoughBlocks { needed, available }) => {
            assert_eq!((needed, available), (4, 3));
        }
        other => panic!("expected NotEnoughBlocks, got {other:?}"),
    }
    match rs.repair_plan(0, &[1, 2, 3]) {
        Err(CodeError::NotEnoughBlocks { .. }) => {}
        other => panic!("expected NotEnoughBlocks, got {other:?}"),
    }
}

/// Invalid code parameters are rejected at construction.
#[test]
fn invalid_code_parameters_are_rejected() {
    assert!(ReedSolomon::new(4, 0).is_err());
    assert!(ReedSolomon::new(4, 4).is_err());
    assert!(ReedSolomon::new(3, 5).is_err());
    assert!(ReedSolomon::new(300, 10).is_err());
}

/// Weighted path search at the degenerate extremes: a path of one helper, and
/// a path using every candidate.
#[test]
fn weighted_path_degenerate_sizes() {
    let n = 5;
    let weights: Vec<f64> = (0..n * n).map(|i| 0.1 + (i % 7) as f64 * 0.1).collect();
    let w = WeightMatrix::new(n, weights);
    let candidates: Vec<usize> = (1..n).collect();

    let single = optimal_path(&w, 0, &candidates, 1).unwrap();
    assert_eq!(single.path.len(), 1);

    let all = optimal_path(&w, 0, &candidates, candidates.len()).unwrap();
    assert_eq!(all.path.len(), candidates.len());

    // Asking for more helpers than exist must not panic.
    assert!(optimal_path(&w, 0, &candidates, candidates.len() + 1).is_none());
    assert!(optimal_path(&w, 0, &candidates, 0).is_none());
}

/// LRC local repair when only the local group survives: the plan must use the
/// local parity alone and still reconstruct the exact bytes.
#[test]
fn lrc_local_repair_with_minimal_availability() {
    let lrc = Lrc::new(12, 2, 2).unwrap();
    let data: Vec<Vec<u8>> = (0..12).map(|i| vec![i as u8; 8]).collect();
    let coded = lrc.encode(&data).unwrap();
    let avail: Vec<usize> = lrc
        .group_members(0)
        .into_iter()
        .filter(|&i| i != 0)
        .collect();
    let plan = lrc.repair_plan(0, &avail).unwrap();
    let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
    assert_eq!(plan.evaluate(&blocks), coded[0]);
}

/// Multi-block repair where every failed block is a parity block.
#[test]
fn multi_repair_of_all_parity_blocks() {
    let code = Arc::new(ReedSolomon::new(14, 10).unwrap());
    let layout = SliceLayout::new(4096, 1024);
    let mut coordinator = Coordinator::new(code.clone(), layout);
    let cluster = Cluster::new(StoreBackend::memory(20)).unwrap();
    let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 4096]).collect();
    let coded = code.encode(&data).unwrap();
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    let failed = vec![10, 11, 12, 13];
    for &f in &failed {
        cluster.erase_block(stripe, f);
    }
    let directive = coordinator
        .plan_multi_repair(stripe, &failed, &[16, 17, 18, 19])
        .unwrap();
    let transport = ChannelTransport::new();
    let repaired = execute_multi(&directive, &cluster, &transport).unwrap();
    for (j, &f) in directive.plan.failed.iter().enumerate() {
        assert_eq!(repaired[j], coded[f], "parity block {f}");
    }
}

/// Files smaller than one block (and empty files) round-trip through the DFS
/// models, including a degraded read of a sub-block file.
#[test]
fn dfs_sub_block_and_empty_files() {
    let profile = SystemProfile::hdfs3().with_block_size(1024);
    let mut dfs = SimulatedDfs::new(profile, 20).unwrap();

    let meta = dfs.write_file("/tiny", &[1, 2, 3]).unwrap();
    dfs.erase_block(meta.stripes[0], 0);
    let back = dfs
        .read_file("/tiny", RepairPath::EcPipe(ExecStrategy::RepairPipelining))
        .unwrap();
    assert_eq!(back, vec![1, 2, 3]);

    dfs.write_file("/empty", &[]).unwrap();
    assert!(dfs
        .read_file("/empty", RepairPath::Original)
        .unwrap()
        .is_empty());
}

/// An empty schedule and a single-task schedule both simulate cleanly.
#[test]
fn simulator_degenerate_schedules() {
    let topo = simnet::Topology::flat(4, 1e9);
    let sim = simnet::Simulator::new(topo, simnet::CostModel::default());
    let report = sim.run(&simnet::Schedule::new());
    assert_eq!(report.makespan, 0.0);

    let mut s = simnet::Schedule::new();
    s.transfer(0, 1, 1024, &[]);
    assert!(sim.run(&s).makespan > 0.0);
}
