//! Topology conformance suite: the runtime's topology-aware repair planning
//! measured on shaped transports.
//!
//! Pins the paper's Fig. 11 claim — weighted path selection (Algorithm 2)
//! beats topology-blind selection when links are heterogeneous — on both
//! transport backends, the rack-aware (Algorithm 1) cross-rack traffic
//! bound, the per-directed-pair byte accounting the telemetry layer is
//! built on, and the mid-stream link watchdog: a link degraded while a
//! repair streams over it triggers a re-plan that still completes
//! byte-exact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::{ErasureCode, ReedSolomon};
use repair_pipelining::ecpipe::exec::{execute_single, ExecStrategy};
use repair_pipelining::ecpipe::transport::{
    ChannelTransport, ReactorTransport, TcpTransport, Transport,
};
use repair_pipelining::ecpipe::{
    Cluster, Coordinator, EcPipeBuilder, LinkWatchConfig, PathPolicy, ReplanReason,
    SelectionPolicy, StoreBackend, Topology, TransportChoice,
};
use repair_pipelining::repair::rack_aware;
use repair_pipelining::simnet::NodeId;

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64 * 131 + seed as u64 * 17 + 5) % 251) as u8)
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11: weighted path selection beats flat LRU on heterogeneous links.
// ---------------------------------------------------------------------------

/// One node's links are ~16x slower than everyone else's. The placement is
/// deterministic (`block i` of stripe 0 lands on node `i`), so with block 3
/// erased the candidate helpers are nodes {0, 1, 2, 4, 5}: fresh LRU keeps
/// the four lowest block indices and streams through slow node 2, while the
/// weighted policy (seeded from static topology weights while telemetry is
/// cold) routes around it.
fn case_weighted_beats_lru(choice: TransportChoice) {
    const BLOCK: usize = 256 * 1024;
    const SLICE: usize = 16 * 1024;
    const FAST: f64 = 4.0 * 1024.0 * 1024.0; // bytes/s
    const SLOW: f64 = 256.0 * 1024.0;
    const SLOW_NODE: NodeId = 2;

    let mut topology = Topology::flat(8, FAST);
    topology.set_node_bandwidth(SLOW_NODE, SLOW, SLOW);

    let data = pattern(4 * BLOCK, 7);
    let mut elapsed = Vec::new();
    let mut paths = Vec::new();
    let mut bottlenecks = Vec::new();
    for policy in [PathPolicy::Lru, PathPolicy::Weighted] {
        let pipe = EcPipeBuilder::new()
            .code(6, 4)
            .block_size(BLOCK)
            .slice_size(SLICE)
            .store(StoreBackend::memory(8))
            .transport(choice)
            .topology(topology.clone())
            .path_policy(policy)
            .build()
            .unwrap();
        let meta = pipe.put("/fig11", &data).unwrap();
        pipe.erase_block(meta.stripes[0], 3);
        let start = Instant::now();
        assert_eq!(
            pipe.get("/fig11").unwrap(),
            data,
            "{policy} repair must be byte-exact"
        );
        elapsed.push(start.elapsed().as_secs_f64());
        let report = pipe.shutdown();
        assert_eq!(report.blocks_repaired, 1, "{policy}");
        assert_eq!(
            report.network_bytes,
            report.link_bytes.values().sum::<u64>(),
            "network_bytes must stay the sum of the per-link split"
        );
        paths.push(report.outcomes[0].path.clone());
        bottlenecks.push(report.outcomes[0].bottleneck);
    }

    assert!(
        paths[0].contains(&SLOW_NODE),
        "topology-blind LRU must pick the slow node: {:?}",
        paths[0]
    );
    assert!(
        !paths[1].contains(&SLOW_NODE),
        "the weighted policy must avoid the slow node: {:?}",
        paths[1]
    );
    assert_eq!(bottlenecks[0], None, "LRU plans without a weight estimate");
    let weighted_bottleneck = bottlenecks[1].expect("weighted plans carry a bottleneck estimate");
    assert!(
        (weighted_bottleneck - 1.0 / FAST).abs() < 1e-12,
        "cold telemetry must fall back to static weights: {weighted_bottleneck} vs {}",
        1.0 / FAST
    );
    // Fig. 11's shape: the slow link bottlenecks the whole pipeline (~16x
    // here); 3x leaves generous slack for a loaded CI machine.
    assert!(
        elapsed[1] * 3.0 < elapsed[0],
        "weighted ({:.3}s) should beat LRU ({:.3}s) by far more than 3x",
        elapsed[1],
        elapsed[0]
    );
}

#[test]
fn weighted_beats_lru_on_heterogeneous_channel_links() {
    case_weighted_beats_lru(TransportChoice::Channel);
}

#[test]
fn weighted_beats_lru_on_heterogeneous_tcp_links() {
    case_weighted_beats_lru(TransportChoice::Tcp);
}

#[test]
fn weighted_beats_lru_on_heterogeneous_reactor_links() {
    case_weighted_beats_lru(TransportChoice::Reactor);
}

// ---------------------------------------------------------------------------
// Algorithm 1: the rack-aware policy moves the provably minimal number of
// cross-rack blocks, pinned via the per-link byte split.
// ---------------------------------------------------------------------------

#[test]
fn rack_aware_moves_fewer_cross_rack_bytes_than_lru() {
    const BLOCK: usize = 64 * 1024;
    const SLICE: usize = 4 * 1024;
    const INNER: f64 = 8.0 * 1024.0 * 1024.0;
    const CROSS: f64 = 1.0 * 1024.0 * 1024.0;

    // Nodes 0-3 in rack 0, nodes 4-7 in rack 1. Stripe 0 places block i on
    // node i; erasing block 0 makes node 0 the requestor and nodes 1..=5
    // the candidates, so any repair needs at least one cross-rack hop.
    let topology = Topology::rack_based(&[4, 4], INNER, CROSS);
    let data = pattern(4 * BLOCK, 9);
    let mut cross_bytes = Vec::new();
    let mut paths = Vec::new();
    for policy in [PathPolicy::Lru, PathPolicy::RackAware] {
        let pipe = EcPipeBuilder::new()
            .code(6, 4)
            .block_size(BLOCK)
            .slice_size(SLICE)
            .store(StoreBackend::memory(8))
            .topology(topology.clone())
            .path_policy(policy)
            .build()
            .unwrap();
        let meta = pipe.put("/racks", &data).unwrap();
        pipe.erase_block(meta.stripes[0], 0);
        assert_eq!(
            pipe.get("/racks").unwrap(),
            data,
            "{policy} repair must be byte-exact"
        );
        let report = pipe.shutdown();
        assert_eq!(report.blocks_repaired, 1, "{policy}");
        cross_bytes.push(report.cross_rack_bytes(&topology));
        paths.push(report.outcomes[0].path.clone());
    }

    let minimum = rack_aware::minimum_cross_rack_transmissions(&topology, 0, &[1, 2, 3, 4, 5], 4);
    assert_eq!(minimum, 1, "one remote helper forces exactly one hop");
    // LRU keeps blocks 1..=4: the path crosses into rack 1 and back.
    assert_eq!(
        rack_aware::cross_rack_transmissions(&topology, &paths[0], 0),
        2
    );
    assert_eq!(cross_bytes[0], 2 * BLOCK as u64);
    // The rack-aware plan achieves the CAR-style lower bound, on the wire.
    assert_eq!(
        rack_aware::cross_rack_transmissions(&topology, &paths[1], 0),
        minimum
    );
    assert_eq!(cross_bytes[1], minimum as u64 * BLOCK as u64);
    assert!(cross_bytes[1] < cross_bytes[0]);
}

// ---------------------------------------------------------------------------
// Telemetry substrate: per-directed-pair byte counters agree with the bytes
// a known repair must move, on both backends, including connection reuse.
// ---------------------------------------------------------------------------

fn case_counters_match_slice_math<T: Transport>(transport: &T) {
    const SLICE: usize = 4 * 1024;
    const SLICES_PER_BLOCK: usize = 16;
    const BLOCK: usize = SLICES_PER_BLOCK * SLICE;

    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let k = code.k();
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory(8)).unwrap();
    let data: Vec<Vec<u8>> = (0..k).map(|i| pattern(BLOCK, i as u8)).collect();
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    cluster.erase_block(stripe, 1);
    let directive = coordinator
        .plan_single_repair(stripe, 1, 7, &[], SelectionPolicy::CodeDefault)
        .unwrap();
    let helpers = directive.helper_nodes();
    let hops: Vec<(NodeId, NodeId)> = helpers
        .windows(2)
        .map(|w| (w[0], w[1]))
        .chain(std::iter::once((*helpers.last().unwrap(), 7)))
        .collect();

    // Round 2 re-runs the identical repair so the same directed pairs (and,
    // on TCP, the same pooled connections) accumulate a second block.
    for round in 1..=2u64 {
        let repaired = execute_single(
            &directive,
            &cluster,
            transport,
            ExecStrategy::RepairPipelining,
        )
        .unwrap();
        assert_eq!(repaired, data[1]);
        for &(src, dst) in &hops {
            assert_eq!(
                transport.link_bytes(src, dst),
                round * (SLICES_PER_BLOCK * SLICE) as u64,
                "round {round}: hop {src}->{dst} must carry whole blocks"
            );
        }
        assert_eq!(transport.total_bytes(), round * (k * BLOCK) as u64);
        // The registry snapshot (what LinkTelemetry consumes) must agree
        // with the per-pair accessors it is derived from.
        let snapshot = transport.stats().snapshot();
        assert_eq!(
            snapshot.values().map(|s| s.bytes).sum::<u64>(),
            transport.total_bytes()
        );
        assert_eq!(snapshot.len(), hops.len());
    }
}

#[test]
fn counters_match_slice_math_on_channel() {
    case_counters_match_slice_math(&ChannelTransport::new());
}

#[test]
fn counters_match_slice_math_on_tcp() {
    case_counters_match_slice_math(&TcpTransport::new());
}

#[test]
fn counters_match_slice_math_on_reactor() {
    case_counters_match_slice_math(&ReactorTransport::new());
}

// ---------------------------------------------------------------------------
// Mid-stream degradation: throttling a link while a repair streams over it
// makes the watchdog cancel, re-plan around the link, and finish byte-exact.
// ---------------------------------------------------------------------------

#[test]
fn degraded_link_triggers_a_replan_that_completes_byte_exact() {
    const BLOCK: usize = 512 * 1024;
    const SLICE: usize = 32 * 1024;
    const RATE: f64 = 1024.0 * 1024.0; // nominal bytes/s on every link
    const REQUESTOR: NodeId = 2; // holder of erased block 2 heals in place

    let pipe = EcPipeBuilder::new()
        .code(6, 4)
        .block_size(BLOCK)
        .slice_size(SLICE)
        .store(StoreBackend::memory(8))
        .transport(TransportChoice::Tcp)
        .topology(Topology::flat(8, RATE))
        .path_policy(PathPolicy::Weighted)
        .link_watch(LinkWatchConfig {
            grace: Duration::from_millis(150),
            tick: Duration::from_millis(25),
            degraded_below: 0.5,
        })
        .build()
        .unwrap();
    let data = pattern(4 * BLOCK, 3);
    let meta = pipe.put("/degraded", &data).unwrap();
    pipe.erase_block(meta.stripes[0], REQUESTOR);

    // Candidate helpers for block 2 (block i sits on node i; the requestor
    // cannot help itself).
    let candidates: [NodeId; 5] = [0, 1, 3, 4, 5];
    let throttled = std::thread::scope(|scope| {
        let reader = scope.spawn(|| pipe.get("/degraded").unwrap());
        // The ~0.6s repair streams its final hop into the requestor from
        // the first slice on; watch the byte counters to learn which helper
        // won that hop, then throttle the live link to 1/32 of nominal.
        let deadline = Instant::now() + Duration::from_secs(10);
        let last_hop = loop {
            if let Some(&c) = candidates
                .iter()
                .find(|&&c| pipe.transport().link_bytes(c, REQUESTOR) > 0)
            {
                break c;
            }
            assert!(
                Instant::now() < deadline,
                "repair never reached the requestor"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(
            pipe.transport()
                .set_link_rate(last_hop, REQUESTOR, 32 * 1024),
            "a topology-shaped transport must accept per-link rate changes"
        );
        assert_eq!(reader.join().unwrap(), data, "repair must stay byte-exact");
        last_hop
    });

    let report = pipe.shutdown();
    assert_eq!(report.blocks_repaired, 1);
    assert!(
        report.replans_because(ReplanReason::LinkDegraded) >= 1,
        "the watchdog must report the degraded link: {:?}",
        report.replan_events
    );
    let outcome = &report.outcomes[0];
    assert!(outcome.replans >= 1, "the repair must have been re-planned");
    assert!(
        !outcome.path.contains(&throttled),
        "the final path {:?} must route around throttled node {throttled}",
        outcome.path
    );
}
