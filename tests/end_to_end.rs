//! End-to-end integration tests: the erasure-code layer, the ECPipe runtime
//! and the storage-system models working together on real bytes.

use std::sync::Arc;

use repair_pipelining::dfs::{RepairPath, SimulatedDfs, SystemProfile};
use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::{ErasureCode, Lrc, ReedSolomon};
use repair_pipelining::ecpipe::exec::{execute_multi, execute_single, ExecStrategy};
use repair_pipelining::ecpipe::recovery::full_node_recovery;
use repair_pipelining::ecpipe::transport::{ChannelTransport, Transport};
use repair_pipelining::ecpipe::{Cluster, Coordinator, SelectionPolicy, StoreBackend};

const BLOCK: usize = 64 * 1024;

fn stripe_data(k: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..BLOCK)
                .map(|b| ((b as u64 * 131 + i as u64 * 17 + seed * 101) % 253) as u8)
                .collect()
        })
        .collect()
}

/// A degraded read through every execution strategy returns exactly the bytes
/// that were erased, for both RS and LRC codes.
#[test]
fn every_strategy_and_code_reconstructs_exact_bytes() {
    let codes: Vec<Arc<dyn ErasureCode>> = vec![
        Arc::new(ReedSolomon::new(14, 10).unwrap()),
        Arc::new(ReedSolomon::new(9, 6).unwrap()),
        Arc::new(Lrc::new(12, 2, 2).unwrap()),
    ];
    for code in codes {
        let k = code.k();
        let n = code.n();
        let layout = SliceLayout::new(BLOCK, 8 * 1024);
        let data = stripe_data(k, 7);
        let coded = code.encode(&data).unwrap();

        for failed in [0, k - 1, n - 1] {
            // A fresh cluster per failure so every helper block is in place.
            let mut coordinator = Coordinator::new(code.clone(), layout);
            let cluster = Cluster::new(StoreBackend::memory(n + 2)).unwrap();
            let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
            cluster.erase_block(stripe, failed);
            for strategy in [
                ExecStrategy::Conventional,
                ExecStrategy::Ppr,
                ExecStrategy::RepairPipelining,
                ExecStrategy::BlockPipeline,
            ] {
                let repaired = cluster
                    .repair(&mut coordinator, stripe, failed, n + 1, strategy)
                    .unwrap();
                assert_eq!(repaired, coded[failed], "{} {:?}", code.name(), strategy);
            }
        }
    }
}

/// The multi-block repair of §4.4 reconstructs several failures at once with
/// each helper reading its block only once.
#[test]
fn multi_block_repair_end_to_end() {
    let code = Arc::new(ReedSolomon::new(14, 10).unwrap());
    let layout = SliceLayout::new(BLOCK, 4 * 1024);
    let mut coordinator = Coordinator::new(code.clone(), layout);
    let cluster = Cluster::new(StoreBackend::memory(20)).unwrap();
    let data = stripe_data(10, 11);
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    let coded = code.encode(&data).unwrap();

    let failed = vec![0, 5, 11, 13];
    for &f in &failed {
        cluster.erase_block(stripe, f);
    }
    let directive = coordinator
        .plan_multi_repair(stripe, &failed, &[16, 17, 18, 19])
        .unwrap();
    let transport = ChannelTransport::new();
    let repaired = execute_multi(&directive, &cluster, &transport).unwrap();
    for (j, &f) in directive.plan.failed.iter().enumerate() {
        assert_eq!(repaired[j], coded[f], "failed block {f}");
    }
    // Traffic: inter-helper links carry f blocks each, deliveries one block
    // each; total = (k-1)*f + f blocks.
    let expected = (10 - 1) * failed.len() * BLOCK + failed.len() * BLOCK;
    assert_eq!(transport.total_bytes(), expected as u64);
}

/// Full-node recovery across stripes with greedy helper scheduling restores
/// every lost block bit-for-bit.
#[test]
fn full_node_recovery_end_to_end() {
    let code = Arc::new(ReedSolomon::new(9, 6).unwrap());
    let layout = SliceLayout::new(BLOCK, 16 * 1024);
    let mut coordinator = Coordinator::new(code.clone(), layout);
    let cluster = Cluster::new(StoreBackend::memory(14)).unwrap();
    let mut all_coded = Vec::new();
    for s in 0..12u64 {
        let data = stripe_data(6, s);
        all_coded.push(code.encode(&data).unwrap());
        cluster.write_stripe(&mut coordinator, s, &data).unwrap();
    }

    let failed_node = 3;
    let lost = cluster.kill_node(failed_node);
    assert!(!lost.is_empty());
    let report = full_node_recovery(
        &mut coordinator,
        &cluster,
        failed_node,
        &[12, 13],
        ExecStrategy::RepairPipelining,
    )
    .unwrap();
    assert_eq!(report.blocks_repaired, lost.len());

    for block in lost {
        let expected = &all_coded[block.stripe.0 as usize][block.index];
        let found = [12usize, 13].iter().any(|&r| {
            cluster
                .store(r)
                .get(block)
                .map(|b| b.as_ref() == expected.as_slice())
                .unwrap_or(false)
        });
        assert!(found, "block {block} not correctly reconstructed");
    }
}

/// The plan evaluated algebraically (ecc), executed by the runtime (ecpipe)
/// and used by the planners (repair) all agree on the reconstructed bytes.
#[test]
fn plan_runtime_agreement() {
    let code = Arc::new(ReedSolomon::new(14, 10).unwrap());
    let layout = SliceLayout::new(BLOCK, 8 * 1024);
    let mut coordinator = Coordinator::new(code.clone(), layout);
    let cluster = Cluster::new(StoreBackend::memory(16)).unwrap();
    let data = stripe_data(10, 21);
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    let coded = code.encode(&data).unwrap();

    cluster.erase_block(stripe, 12);
    let directive = coordinator
        .plan_single_repair(stripe, 12, 15, &[], SelectionPolicy::CodeDefault)
        .unwrap();

    // Algebraic evaluation of the same plan.
    let blocks: Vec<Option<Vec<u8>>> = coded.iter().cloned().map(Some).collect();
    let algebraic = directive.plan.evaluate(&blocks);

    let transport = ChannelTransport::new();
    let runtime = execute_single(
        &directive,
        &cluster,
        &transport,
        ExecStrategy::RepairPipelining,
    )
    .unwrap();
    assert_eq!(algebraic, coded[12]);
    assert_eq!(runtime, coded[12]);
}

/// The storage-system models serve correct bytes through both the original
/// repair path and the ECPipe path, for all three systems.
#[test]
fn storage_systems_serve_correct_degraded_reads() {
    for profile in [
        SystemProfile::hdfs_raid(),
        SystemProfile::hdfs3(),
        SystemProfile::qfs(),
    ] {
        let profile = profile.with_block_size(32 * 1024);
        let k = profile.default_code.1;
        let mut dfs = SimulatedDfs::new(profile, 20).unwrap();
        let data: Vec<u8> = (0..k * 32 * 1024 + 999).map(|i| (i % 251) as u8).collect();
        let meta = dfs.write_file("/data", &data).unwrap();
        dfs.erase_block(meta.stripes[0], 1);
        for path in [
            RepairPath::Original,
            RepairPath::EcPipe(ExecStrategy::RepairPipelining),
        ] {
            let back = dfs.read_file("/data", path).unwrap();
            assert_eq!(back, data, "{}", dfs.profile().name);
        }
    }
}
