//! Smoke tests that actually run the examples, so they cannot silently rot.
//!
//! `cargo test` already compiles every example; these tests additionally
//! execute them end-to-end (each finishes in a few seconds in the dev
//! profile).

use std::process::Command;

fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn degraded_read_runs() {
    run_example("degraded_read");
}

#[test]
fn full_node_recovery_runs() {
    run_example("full_node_recovery");
}

#[test]
fn geo_repair_runs() {
    run_example("geo_repair");
}

#[test]
fn tcp_repair_runs() {
    run_example("tcp_repair");
}

#[test]
fn repair_daemon_runs() {
    run_example("repair_daemon");
}

#[test]
fn restart_recovery_runs() {
    run_example("restart_recovery");
}
