//! Kill-and-restart acceptance tests for the durable metadata plane.
//!
//! A durable [`EcPipe`] is killed (`simulate_crash`, the in-process stand-in
//! for `kill -9`) with one repair in flight and one still queued. A rebuilt
//! handle over the same directories must recover every object, placement and
//! epoch byte-exactly, re-drive the queued repair, and reject the stale
//! directive left behind by the repair that completed-but-never-resolved —
//! the epoch check is what stands between a crash and double-healing.

use std::path::{Path, PathBuf};

use repair_pipelining::ecpipe::{
    EcPipeBuilder, MetaBackend, MetaConfig, MetaRouter, ObjectRecord, RepairPriority, RepairRecord,
    RepairRequest, StoreBackend, StripeRecord,
};

const NODES: usize = 6;
const BLOCK: usize = 16 * 1024;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecpipe-meta-rec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn builder(root: &Path) -> EcPipeBuilder {
    EcPipeBuilder::new()
        .code(4, 2)
        .block_size(BLOCK)
        .slice_size(4 * 1024)
        .store(StoreBackend::file(root.join("store"), NODES))
        .meta(MetaBackend::durable(root.join("meta")))
        .meta_shards(4)
        .workers(1)
}

/// Everything the metadata plane is responsible for remembering, collected
/// for whole-namespace equality checks across a crash.
#[derive(Debug, PartialEq)]
struct Namespace {
    objects: Vec<ObjectRecord>,
    stripes: Vec<StripeRecord>,
    pending: Vec<RepairRecord>,
}

fn namespace(meta: &MetaRouter) -> Namespace {
    let mut objects = Vec::new();
    meta.for_each_object(|o| objects.push(o.clone()));
    objects.sort_by(|a, b| a.name.cmp(&b.name));
    let mut stripes = Vec::new();
    meta.for_each_stripe(|s| stripes.push(s.clone()));
    stripes.sort_by_key(|s| s.id);
    Namespace {
        objects,
        stripes,
        pending: meta.pending_repairs(),
    }
}

/// A node outside the stripe's current placement, for relocating repairs.
fn spare_node(stripe: &StripeRecord) -> usize {
    (0..NODES)
        .find(|n| !stripe.locations.contains(n))
        .expect("6 nodes, 4 blocks: a spare always exists")
}

#[test]
fn kill_and_restart_recovers_namespace_and_rejects_stale_directives() {
    let root = fresh_dir("kill-restart");
    let data: Vec<u8> = (0..100_000).map(|i| (i % 249) as u8).collect();

    // --- Run 1: populate, wound two stripes, crash mid-repair. -----------
    // The low transport rate makes the in-flight repair take ~300 ms, so
    // the crash below lands while it is mid-transfer, deterministically.
    let pipe = builder(&root).rate_limit(96 * 1024).build().unwrap();
    pipe.put("/acceptance/object", &data).unwrap();

    let meta = pipe.meta();
    let mut stripes = Vec::new();
    meta.for_each_stripe(|s| stripes.push(s.clone()));
    stripes.sort_by_key(|s| s.id);
    assert!(
        stripes.len() >= 3,
        "need >= 3 stripes, got {}",
        stripes.len()
    );
    let (s0, s1) = (stripes[0].clone(), stripes[1].clone());
    let (r0, r1) = (spare_node(&s0), spare_node(&s1));

    // Repair 1 goes in flight on the single worker...
    assert!(pipe.erase_block(s0.id, 0));
    pipe.manager()
        .enqueue(RepairRequest {
            stripe: s0.id,
            failed: 0,
            requestor: r0,
            priority: RepairPriority::Background,
        })
        .unwrap();
    let popped = std::time::Instant::now();
    while pipe.manager().queued() > 0 {
        assert!(
            popped.elapsed().as_secs() < 10,
            "repair never went in flight"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // ...and repair 2 queues behind it, never reaching a worker.
    assert!(pipe.erase_block(s1.id, 0));
    pipe.manager()
        .enqueue(RepairRequest {
            stripe: s1.id,
            failed: 0,
            requestor: r1,
            priority: RepairPriority::Corruption,
        })
        .unwrap();

    pipe.simulate_crash();

    // The crash joined the in-flight repair: it stored + relocated (epoch
    // bump persisted) but never resolved its journal record — the stale
    // directive. The queued repair was dropped unrun — still pending, and
    // still current.
    assert_eq!(meta.epoch_of(s0.id).unwrap(), s0.epoch + 1);
    assert_eq!(meta.stripe(s0.id).unwrap().node_of(0), r0);
    assert_eq!(meta.epoch_of(s1.id).unwrap(), s1.epoch);
    let expected = namespace(&meta);
    assert_eq!(expected.pending.len(), 2, "both directives journaled");
    drop(meta);
    drop(stripes);

    // --- Byte-exact reopen: a raw router over the same directory sees the
    // identical namespace, including the shard count from the manifest. ---
    {
        let raw =
            MetaRouter::open(MetaConfig::new(MetaBackend::durable(root.join("meta")))).unwrap();
        assert_eq!(raw.shard_count(), 4, "manifest shard count wins");
        assert_eq!(raw.dropped_tail_records(), 0, "clean crash: no torn tail");
        assert_eq!(namespace(&raw), expected);
    }

    // --- Run 2: rebuild over the same directories. -----------------------
    let pipe = builder(&root).build().unwrap();
    let meta = pipe.meta();

    // The stale directive (s0: planned at the pre-relocation epoch) was
    // rejected by the epoch check and resolved, not double-healed: the
    // placement and epoch are exactly what the crash left behind.
    assert_eq!(meta.epoch_of(s0.id).unwrap(), s0.epoch + 1);
    assert_eq!(meta.stripe(s0.id).unwrap().node_of(0), r0);
    assert!(
        !meta
            .pending_repairs()
            .iter()
            .any(|p| p.stripe == s0.id && p.index == 0),
        "stale directive must be resolved on reopen"
    );

    // The current directive (s1) was re-enqueued and completes.
    pipe.manager().wait_idle();
    assert_eq!(meta.epoch_of(s1.id).unwrap(), s1.epoch + 1);
    assert_eq!(meta.stripe(s1.id).unwrap().node_of(0), r1);
    assert!(meta.pending_repairs().is_empty());
    drop(meta);

    // The data path survived the whole ordeal byte-exactly.
    assert_eq!(pipe.get("/acceptance/object").unwrap(), data);
    let report = pipe.shutdown();
    assert_eq!(report.failed_repairs, 0);

    let _ = std::fs::remove_dir_all(&root);
}

/// An ephemeral pipe over a durable store directory starts from an empty
/// namespace — durability is the metadata backend's property, not the
/// store's.
#[test]
fn ephemeral_backend_forgets_across_handles() {
    let root = fresh_dir("ephemeral");
    let data = vec![7u8; 40_000];
    {
        let pipe = EcPipeBuilder::new()
            .code(4, 2)
            .block_size(BLOCK)
            .store(StoreBackend::file(root.join("store"), NODES))
            .build()
            .unwrap();
        pipe.put("/gone/after/drop", &data).unwrap();
        pipe.shutdown();
    }
    let pipe = EcPipeBuilder::new()
        .code(4, 2)
        .block_size(BLOCK)
        .store(StoreBackend::file(root.join("store"), NODES))
        .build()
        .unwrap();
    assert!(pipe.get("/gone/after/drop").is_err());
    assert_eq!(pipe.meta().object_count(), 0);
    pipe.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Reopening a durable namespace with no crash and no pending repairs is a
/// plain byte-exact restore: every object readable, every placement intact.
#[test]
fn clean_restart_restores_reads_without_repairs() {
    let root = fresh_dir("clean");
    let objects: Vec<(String, Vec<u8>)> = (0..5)
        .map(|i| {
            let name = format!("/clean/obj-{i}");
            let bytes = (0..20_000 + i * 3_000)
                .map(|b| ((b * 7 + i) % 251) as u8)
                .collect();
            (name, bytes)
        })
        .collect();
    {
        let pipe = builder(&root).build().unwrap();
        for (name, bytes) in &objects {
            pipe.put(name, bytes).unwrap();
        }
        pipe.shutdown();
    }
    let pipe = builder(&root).build().unwrap();
    assert_eq!(pipe.meta().object_count(), objects.len());
    for (name, bytes) in &objects {
        assert_eq!(&pipe.get(name).unwrap(), bytes, "{name}");
    }
    assert!(pipe.meta().pending_repairs().is_empty());
    pipe.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
