//! Repository hygiene: every repository path referenced from the top-level
//! docs must exist (so README/ARCHITECTURE/PAPER cannot rot silently when
//! files move), and no stray top-level directories may appear (a
//! `examples_dbg/` once lingered untracked for several releases). CI runs
//! this as its hygiene step.

use std::path::Path;

/// The documents whose path references are checked.
const DOCS: &[&str] = &["README.md", "PAPER.md", "docs/ARCHITECTURE.md"];

/// A token is treated as a repository path when it starts with one of these
/// anchors. Prose like `bytes/sec` or `bins/examples/benches` never does.
const ANCHORS: &[&str] = &[
    "crates/",
    "tests/",
    "examples/",
    "benches/",
    "docs/",
    "src/",
    ".github/",
];

/// Extracts the anchored path references from a markdown document: maximal
/// runs of path characters, trimmed of trailing punctuation, globs skipped.
fn extract_paths(text: &str) -> Vec<String> {
    let is_path_char =
        |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '/' | '*');
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find(is_path_char) {
        let tail = &rest[start..];
        let end = tail.find(|c| !is_path_char(c)).unwrap_or(tail.len());
        let token = tail[..end].trim_end_matches(['.', '/', '-']);
        if ANCHORS.iter().any(|a| token.starts_with(a)) && !token.contains('*') {
            out.push(token.to_string());
        }
        rest = &tail[end..];
    }
    out
}

#[test]
fn every_documented_path_exists() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut missing = Vec::new();
    let mut checked = 0;
    for doc in DOCS {
        let text = std::fs::read_to_string(root.join(doc))
            .unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        for path in extract_paths(&text) {
            checked += 1;
            if !root.join(&path).exists() {
                missing.push(format!("{doc}: {path}"));
            }
        }
    }
    assert!(
        checked > 40,
        "the path extractor found only {checked} references; it has probably regressed"
    );
    assert!(
        missing.is_empty(),
        "documented paths that do not exist:\n  {}",
        missing.join("\n  ")
    );
}

#[test]
fn extractor_recognizes_paths_and_ignores_prose() {
    let text = "See `crates/core/src/store.rs` and [CI](.github/workflows/ci.yml); \
                shims live under crates/shims/. Prose like 4 bytes/sec, \
                bins/examples/benches and globs crates/**/src stay out.";
    let paths = extract_paths(text);
    assert_eq!(
        paths,
        vec![
            "crates/core/src/store.rs",
            ".github/workflows/ci.yml",
            "crates/shims",
        ]
    );
}

/// Every top-level directory must be one the repository knows about. A new
/// directory is a deliberate act: add it here (and to the docs) or delete
/// it, but don't let scratch dirs like the late `examples_dbg/` accumulate.
#[test]
fn no_stray_toplevel_directories() {
    /// Tracked directories plus the build artifact. Hidden directories
    /// (`.git`, local tool state) are exempt — they never ship.
    const ALLOWED: &[&str] = &["crates", "docs", "examples", "src", "tests", "target"];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut strays: Vec<String> = std::fs::read_dir(root)
        .expect("repository root is readable")
        .flatten()
        .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| !name.starts_with('.') && !ALLOWED.contains(&name.as_str()))
        .collect();
    strays.sort();
    assert!(
        strays.is_empty(),
        "unexpected top-level directories (delete them or add them to the \
         allowlist in tests/docs_paths.rs): {strays:?}"
    );
}

#[test]
fn architecture_doc_is_linked_from_readme() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    assert!(
        readme.contains("docs/ARCHITECTURE.md"),
        "README must link the architecture document"
    );
}
