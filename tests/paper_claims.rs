//! Cross-crate integration tests for the paper's headline claims.
//!
//! Each test states the claim as the paper phrases it and checks that the
//! reproduction (planners + simulator, or the real runtime) exhibits the same
//! behaviour — same winner, roughly the same factor.

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::repair::{
    analysis, conventional, cyclic, multiblock, ppr, rack_aware, rp, weighted_path, MultiRepairJob,
    Scheme, SingleRepairJob,
};
use repair_pipelining::simnet::{CostModel, Simulator, Topology, GBIT, MBIT};

const MIB: usize = 1024 * 1024;
const KIB: usize = 1024;

fn paper_sim() -> Simulator {
    Simulator::new(Topology::flat(18, GBIT), CostModel::paper_local_cluster())
}

fn default_job(k: usize) -> SingleRepairJob {
    SingleRepairJob::new((1..=k).collect(), 0, SliceLayout::new(64 * MIB, 32 * KIB))
}

/// §1 / §6.1: repair pipelining reduces the single-block repair time by
/// nearly 90% compared to conventional repair and about 70% compared to PPR.
#[test]
fn headline_reductions_hold() {
    let sim = paper_sim();
    let job = default_job(10);
    let conv = sim.run(&conventional::schedule(&job)).makespan;
    let ppr_t = sim.run(&ppr::schedule(&job)).makespan;
    let rp_t = sim.run(&rp::schedule(&job)).makespan;

    let vs_conv = 1.0 - rp_t / conv;
    let vs_ppr = 1.0 - rp_t / ppr_t;
    assert!(vs_conv > 0.85, "reduction vs conventional {vs_conv}");
    assert!(vs_ppr > 0.6, "reduction vs PPR {vs_ppr}");
}

/// §3.2: the single-block repair time approaches the normal read time for a
/// single available block (within ~10%).
#[test]
fn repair_time_close_to_normal_read_time() {
    let sim = paper_sim();
    let job = default_job(10);
    let rp_t = sim.run(&rp::schedule(&job)).makespan;
    // Normal read: stream one block over one link.
    let mut direct = simnet::Schedule::new();
    let layout = job.layout;
    for j in 0..layout.slice_count() {
        let len = layout.slice_len(j) as u64;
        let read = direct.disk_read(1, len, &[]);
        direct.transfer(1, 0, len, &[read]);
    }
    let direct_t = sim.run(&direct).makespan;
    assert!(
        rp_t < 1.1 * direct_t,
        "rp {rp_t} should be within 10% of direct send {direct_t}"
    );
}

/// §2.2 / §3.2: in timeslots, conventional repair costs k, PPR costs
/// ceil(log2(k+1)), and repair pipelining approaches 1. The simulator must
/// agree with the closed-form analysis on an ideal network.
#[test]
fn simulator_matches_timeslot_analysis() {
    let sim = Simulator::new(Topology::flat(18, GBIT), CostModel::network_only());
    for k in [6usize, 10, 12] {
        let job = SingleRepairJob::new((1..=k).collect(), 0, SliceLayout::new(32 * MIB, 32 * KIB));
        let timeslot = analysis::timeslot_seconds(32 * MIB, GBIT);
        let conv = sim.run(&conventional::schedule(&job)).makespan;
        let ppr_t = sim.run(&ppr::schedule(&job)).makespan;
        let rp_t = sim.run(&rp::schedule(&job)).makespan;
        assert!((conv / timeslot - analysis::conventional_single(k)).abs() < 0.1);
        assert!((ppr_t / timeslot - analysis::ppr_single(k)).abs() < 0.15);
        assert!((rp_t / timeslot - analysis::rp_single(k, job.slice_count())).abs() < 0.05);
    }
}

/// §6.1 (Figure 8(c)): the repair time of conventional repair grows with k,
/// while repair pipelining stays flat.
#[test]
fn rp_is_insensitive_to_k() {
    let sim = paper_sim();
    let conv6 = sim.run(&conventional::schedule(&default_job(6))).makespan;
    let conv12 = sim.run(&conventional::schedule(&default_job(12))).makespan;
    let rp6 = sim.run(&rp::schedule(&default_job(6))).makespan;
    let rp12 = sim.run(&rp::schedule(&default_job(12))).makespan;
    assert!(conv12 > 1.8 * conv6);
    assert!(rp12 < 1.05 * rp6);
}

/// §4.4 / Figure 8(f): a multi-block repair with repair pipelining takes
/// about 60% less time than conventional repair for four failed blocks.
#[test]
fn multi_block_repair_reduction() {
    let sim = Simulator::new(Topology::flat(40, GBIT), CostModel::paper_local_cluster());
    let layout = SliceLayout::new(64 * MIB, 32 * KIB);
    let job = MultiRepairJob::new((1..=10).collect(), (20..24).collect(), layout);
    let conv = sim.run(&multiblock::schedule_conventional(&job)).makespan;
    let rp_t = sim.run(&multiblock::schedule_rp(&job)).makespan;
    let reduction = 1.0 - rp_t / conv;
    assert!(
        reduction > 0.5 && reduction < 0.8,
        "multi-block reduction {reduction}"
    );
}

/// §4.1 / Figure 8(g): with a 100 Mb/s edge link the cyclic version cuts the
/// repair time by roughly 80% compared to the basic version.
#[test]
fn cyclic_version_wins_under_edge_bottleneck() {
    let layout = SliceLayout::new(64 * MIB, 32 * KIB);
    let mut topo = Topology::flat(18, GBIT);
    topo.limit_ingress(0, 100.0 * MBIT);
    let sim = Simulator::new(topo, CostModel::paper_local_cluster());
    let job = SingleRepairJob::new((1..=10).collect(), 0, layout);
    let basic = sim.run(&rp::schedule(&job)).makespan;
    let cyc = sim.run(&cyclic::schedule(&job)).makespan;
    let reduction = 1.0 - cyc / basic;
    assert!(reduction > 0.7, "cyclic reduction {reduction}");
}

/// §4.2 / Figure 8(h): rack-aware path selection minimises the cross-rack
/// traffic and further reduces the repair time over a rack-oblivious path.
#[test]
fn rack_awareness_reduces_cross_rack_traffic_and_time() {
    let topo = Topology::rack_based(&[3, 3, 3], GBIT, 800.0 * MBIT);
    let sim = Simulator::new(topo.clone(), CostModel::paper_local_cluster());
    let layout = SliceLayout::new(64 * MIB, 32 * KIB);
    let requestor = 1;
    let candidates: Vec<usize> = (2..9).collect();

    let aware = rack_aware::select_path(&topo, requestor, &candidates, 6);
    let crossings = rack_aware::cross_rack_transmissions(&topo, &aware, requestor);
    assert_eq!(
        crossings,
        rack_aware::minimum_cross_rack_transmissions(&topo, requestor, &candidates, 6)
    );

    let oblivious = vec![3, 6, 7, 4, 5, 2];
    let t_aware = sim
        .run(&rp::schedule(&SingleRepairJob::new(
            aware, requestor, layout,
        )))
        .makespan;
    let t_oblivious = sim
        .run(&rp::schedule(&SingleRepairJob::new(
            oblivious, requestor, layout,
        )))
        .makespan;
    let report_aware = sim.run(&rp::schedule(&SingleRepairJob::new(
        rack_aware::select_path(&topo, requestor, &candidates, 6),
        requestor,
        layout,
    )));
    assert!(t_aware < 0.7 * t_oblivious);
    // Cross-rack traffic equals exactly two blocks (one per remote rack).
    assert_eq!(report_aware.cross_rack_bytes, 2 * 64 * MIB as u64);
}

/// §4.3: Algorithm 2 returns the same optimal bottleneck as brute force and
/// improves the repair time on the paper's EC2 bandwidth measurements.
#[test]
fn weighted_path_selection_is_optimal_and_helps() {
    let topo = simnet::geo::north_america(4);
    let layout = SliceLayout::new(64 * MIB, 32 * KIB);
    let sim = Simulator::new(topo.clone(), CostModel::ec2_t2_micro());
    let requestor = 0;
    let candidates: Vec<usize> = (1..16).collect();

    let optimal = weighted_path::optimal_path(&topo, requestor, &candidates, 12).unwrap();
    let random_path: Vec<usize> = candidates.iter().copied().take(12).collect();

    let t_random = sim
        .run(&rp::schedule(&SingleRepairJob::new(
            random_path,
            requestor,
            layout,
        )))
        .makespan;
    let t_optimal = sim
        .run(&rp::schedule(&SingleRepairJob::new(
            optimal.path.clone(),
            requestor,
            layout,
        )))
        .makespan;
    assert!(t_optimal <= t_random);

    // Against the brute-force oracle on a reduced instance.
    let small: Vec<usize> = (1..8).collect();
    let fast = weighted_path::optimal_path(&topo, requestor, &small, 5).unwrap();
    let slow = weighted_path::brute_force_path(&topo, requestor, &small, 5).unwrap();
    assert!((fast.bottleneck_weight - slow.bottleneck_weight).abs() < 1e-12);
}

/// §6.4 (Figure 11(a)): slice-level pipelining with parallel sub-operations
/// (RP) beats the serialised slice-level baseline, which beats block-level
/// pipelining.
#[test]
fn implementation_comparison_ordering() {
    let sim = paper_sim();
    let job = default_job(10);
    let pipe_b = sim.run(&rp::schedule_pipe_b(&job)).makespan;
    let pipe_s = sim.run(&rp::schedule_pipe_s(&job)).makespan;
    let rp_t = sim.run(&rp::schedule(&job)).makespan;
    assert!(rp_t < pipe_s && pipe_s < pipe_b);
    assert!(pipe_b > 4.0 * pipe_s, "Pipe-B {pipe_b} vs Pipe-S {pipe_s}");
}

/// The scheme enum exposes every single-block scheme uniformly.
#[test]
fn scheme_enum_builds_consistent_schedules() {
    let sim = paper_sim();
    let job = default_job(10);
    let mut times = Vec::new();
    for scheme in [
        Scheme::Conventional,
        Scheme::Ppr,
        Scheme::RepairPipelining,
        Scheme::CyclicRepairPipelining,
    ] {
        let report = sim.run(&scheme.schedule(&job));
        assert_eq!(report.network_bytes, 10 * 64 * MIB as u64, "{scheme:?}");
        times.push((scheme, report.makespan));
    }
    // Conventional is the slowest of the four on a homogeneous network.
    let conv = times[0].1;
    for (label, t) in &times[1..] {
        assert!(*t < conv, "{label} should beat conventional");
    }
}
