//! Conformance suite for the repair manager: concurrent-repair correctness
//! over both transport backends.
//!
//! Generic cases instantiated for [`ChannelTransport`], [`TcpTransport`]
//! and [`ReactorTransport`]:
//! a full-node recovery executed by many workers at once must reconstruct
//! every block byte-exact, never exceed the per-node in-flight cap, and
//! (on rate-limited links, where repair is network-bound like the paper's
//! testbed) finish measurably faster than the sequential
//! `full_node_recovery_over` loop. Channel-only cases pin the scheduling
//! semantics: a cap of 1 reproduces the sequential results byte-for-byte,
//! degraded reads finish before queued background work, helpers that die
//! mid-flight are re-planned around, and a silently dead node is detected
//! and auto-recovered by the daemon.

use std::sync::Arc;

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::stripe::{BlockId, StripeId};
use repair_pipelining::ecc::{ErasureCode, ReedSolomon};
use repair_pipelining::ecpipe::manager::{
    recover_node, run_batch, ManagerConfig, NodeHealth, RepairManager, RepairPriority,
    RepairRequest,
};
use repair_pipelining::ecpipe::recovery::full_node_recovery_over;
use repair_pipelining::ecpipe::transport::{
    ChannelTransport, ReactorTransport, TcpTransport, Transport,
};
use repair_pipelining::ecpipe::{Cluster, Coordinator, ExecStrategy, StoreBackend};

const BLOCK: usize = 64 * 1024;
const SLICE: usize = 8 * 1024;
/// Stripes live on nodes `0..12`; nodes 12 and 13 are replacement
/// requestors holding no stripe blocks.
const STORAGE_NODES: usize = 12;
const NODES: usize = 14;
const STRIPES: u64 = 24;
const FAILED_NODE: usize = 2;
const REQUESTORS: [usize; 2] = [12, 13];
/// Per-link bandwidth for the network-bound cases (§3.2's setting): low
/// enough that link time, not CPU time, dominates each repair.
const LINK_RATE: u64 = 4 * 1024 * 1024;

fn build_cluster() -> (Coordinator, Cluster, Vec<Vec<Vec<u8>>>) {
    let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory(NODES)).unwrap();
    let mut originals = Vec::new();
    for s in 0..STRIPES {
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..BLOCK)
                    .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                    .collect()
            })
            .collect();
        let placement: Vec<usize> = (0..6).map(|i| (s as usize + i) % STORAGE_NODES).collect();
        cluster
            .write_stripe_with_placement(&mut coordinator, s, &data, placement)
            .unwrap();
        originals.push(data);
    }
    (coordinator, cluster, originals)
}

/// The expected content of `block`: the original data, or a fresh re-encode
/// for parity indices.
fn expected_block(originals: &[Vec<Vec<u8>>], block: BlockId) -> Vec<u8> {
    let code = ReedSolomon::new(6, 4).unwrap();
    let data = &originals[block.stripe.0 as usize];
    if block.index < 4 {
        data[block.index].clone()
    } else {
        code.encode(data).unwrap()[block.index].clone()
    }
}

/// Runs a 4-worker full-node recovery and checks byte-exact reconstruction
/// plus the admission cap.
fn case_concurrent_recovery_byte_exact<T: Transport>(transport: &T) {
    let (mut coordinator, cluster, originals) = build_cluster();
    let lost = cluster.kill_node(FAILED_NODE);
    assert!(lost.len() >= 10);
    let config = ManagerConfig::default()
        .with_workers(4)
        .with_inflight_cap(3);
    let report = recover_node(
        &mut coordinator,
        &cluster,
        transport,
        FAILED_NODE,
        &REQUESTORS,
        &config,
    )
    .unwrap();
    assert_eq!(report.blocks_repaired, lost.len());
    assert_eq!(report.bytes_repaired, lost.len() * BLOCK);
    assert_eq!(report.failed_repairs, 0);
    assert!(report.network_bytes > 0);
    assert!(
        report.max_inflight() <= 3,
        "admission cap exceeded: {:?}",
        report.peak_inflight
    );
    for block in lost {
        let expected = expected_block(&originals, block);
        let found = REQUESTORS
            .iter()
            .any(|&r| matches!(cluster.store(r).get(block), Ok(b) if b == expected));
        assert!(found, "block {block} not reconstructed byte-exact");
    }
}

/// §3.3 at runtime: with 4 workers on rate-limited links, recovering a node
/// holding 20+ stripes is measurably faster than the sequential loop on an
/// equally-throttled transport of the same backend.
fn case_manager_beats_sequential<T: Transport>(sequential_t: &T, concurrent_t: &T) {
    let (mut coordinator, cluster, _) = build_cluster();
    let lost = cluster.kill_node(FAILED_NODE);
    assert!(lost.len() >= 20 / 2); // 12 stripes on the failed node
    let sequential = full_node_recovery_over(
        &mut coordinator,
        &cluster,
        FAILED_NODE,
        &REQUESTORS,
        ExecStrategy::RepairPipelining,
        sequential_t,
    )
    .unwrap();

    let (mut coordinator, cluster, _) = build_cluster();
    cluster.kill_node(FAILED_NODE);
    let config = ManagerConfig::default()
        .with_workers(4)
        .with_inflight_cap(3);
    let concurrent = recover_node(
        &mut coordinator,
        &cluster,
        concurrent_t,
        FAILED_NODE,
        &REQUESTORS,
        &config,
    )
    .unwrap();

    assert_eq!(concurrent.blocks_repaired, sequential.blocks_repaired);
    // Generous margin: parallel recovery routinely lands near 3x on these
    // parameters; 20% faster is the flake-proof floor.
    assert!(
        concurrent.wall_time.as_secs_f64() < 0.8 * sequential.wall_time.as_secs_f64(),
        "4 workers should beat the sequential loop: concurrent {:.3}s vs sequential {:.3}s",
        concurrent.wall_time.as_secs_f64(),
        sequential.wall_time.as_secs_f64(),
    );
}

macro_rules! manager_suite {
    ($backend:ident, $make:expr, $make_throttled:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn concurrent_recovery_byte_exact() {
                case_concurrent_recovery_byte_exact(&$make);
            }

            #[test]
            fn manager_beats_sequential_on_throttled_links() {
                case_manager_beats_sequential(&$make_throttled, &$make_throttled);
            }
        }
    };
}

manager_suite!(
    channel,
    ChannelTransport::new(),
    ChannelTransport::with_rate_limit(LINK_RATE)
);
manager_suite!(
    tcp,
    TcpTransport::new(),
    TcpTransport::with_rate_limit(LINK_RATE)
);
manager_suite!(
    reactor,
    ReactorTransport::new(),
    ReactorTransport::with_rate_limit(LINK_RATE)
);

/// A per-node in-flight cap of 1 (the most conservative admission setting)
/// still reconstructs exactly the bytes the sequential loop produces, block
/// for block and store for store.
#[test]
fn cap_one_reproduces_sequential_results() {
    let (mut coordinator, cluster, _) = build_cluster();
    let lost = cluster.kill_node(FAILED_NODE);
    full_node_recovery_over(
        &mut coordinator,
        &cluster,
        FAILED_NODE,
        &REQUESTORS,
        ExecStrategy::RepairPipelining,
        &ChannelTransport::new(),
    )
    .unwrap();

    let (mut coordinator2, cluster2, _) = build_cluster();
    cluster2.kill_node(FAILED_NODE);
    let config = ManagerConfig::default()
        .with_workers(4)
        .with_inflight_cap(1);
    let report = recover_node(
        &mut coordinator2,
        &cluster2,
        &ChannelTransport::new(),
        FAILED_NODE,
        &REQUESTORS,
        &config,
    )
    .unwrap();
    assert_eq!(report.max_inflight(), 1);

    // Same blocks, same requestor stores, same bytes.
    for block in lost {
        let on = REQUESTORS
            .iter()
            .find(|&&r| cluster.store(r).contains(block))
            .copied()
            .expect("sequential run stored the block");
        assert_eq!(
            cluster.store(on).get(block).unwrap(),
            cluster2.store(on).get(block).unwrap(),
            "block {block} differs between sequential and cap-1 manager runs"
        );
    }
}

/// Degraded reads must finish before background work that was queued ahead
/// of them (single worker makes the pop order fully deterministic).
#[test]
fn degraded_reads_finish_before_queued_background_work() {
    let (mut coordinator, cluster, originals) = build_cluster();
    let mut requests = Vec::new();
    for s in 0..6u64 {
        cluster.erase_block(StripeId(s), 0);
        requests.push(RepairRequest {
            stripe: StripeId(s),
            failed: 0,
            requestor: 12,
            priority: RepairPriority::Background,
        });
    }
    for s in 6..8u64 {
        cluster.erase_block(StripeId(s), 1);
        requests.push(RepairRequest {
            stripe: StripeId(s),
            failed: 1,
            requestor: 13,
            priority: RepairPriority::DegradedRead,
        });
    }
    let transport = ChannelTransport::new();
    let config = ManagerConfig::default().with_workers(1);
    let report = run_batch(&mut coordinator, &cluster, &transport, &config, requests).unwrap();
    assert_eq!(report.blocks_repaired, 8);
    let max_degraded = report
        .outcomes
        .iter()
        .filter(|o| o.priority == RepairPriority::DegradedRead)
        .map(|o| o.finished_seq)
        .max()
        .unwrap();
    let min_background = report
        .outcomes
        .iter()
        .filter(|o| o.priority == RepairPriority::Background)
        .map(|o| o.finished_seq)
        .min()
        .unwrap();
    assert!(
        max_degraded < min_background,
        "degraded reads must finish first: degraded up to #{max_degraded}, \
         background from #{min_background}"
    );
    for s in 6..8u64 {
        assert_eq!(
            cluster.store(13).get(BlockId::new(s, 1)).unwrap(),
            expected_block(&originals, BlockId::new(s, 1)),
        );
    }
}

/// In the daemon, a degraded read enqueued behind a long background backlog
/// is picked up next, not last.
#[test]
fn daemon_degraded_read_preempts_backlog() {
    let (coordinator, cluster, _) = build_cluster();
    cluster.kill_node(FAILED_NODE);
    let config = ManagerConfig {
        workers: 1,
        auto_requestors: vec![12, 13],
        ..ManagerConfig::default()
    };
    let manager = RepairManager::start(
        coordinator,
        cluster,
        ChannelTransport::with_rate_limit(LINK_RATE),
        config,
    );
    let queued = manager.report_node_failure(FAILED_NODE);
    assert_eq!(queued, 12);
    manager.cluster().erase_block(StripeId(5), 1);
    assert!(manager.degraded_read(StripeId(5), 1, 13).unwrap());
    manager.wait_idle();
    let report = manager.shutdown();
    assert_eq!(report.failed_repairs, 0);
    let degraded = report
        .outcomes
        .iter()
        .find(|o| o.priority == RepairPriority::DegradedRead)
        .expect("degraded read completed");
    // The worker had at most a couple of background repairs in flight when
    // the degraded read arrived; it must jump the remaining backlog.
    assert!(
        degraded.started_seq <= 5,
        "degraded read started {}th of {} repairs",
        degraded.started_seq,
        report.outcomes.len()
    );
}

/// A helper block that vanishes after planning is excluded and the repair
/// re-planned with the survivors.
#[test]
fn replans_around_a_lost_helper() {
    let (mut coordinator, cluster, originals) = build_cluster();
    cluster.erase_block(StripeId(0), 0);
    // The first LRU plan for stripe 0 picks the lowest-index helpers
    // {1, 2, 3, 4}; erasing block 1 forces a mid-flight re-plan.
    cluster.erase_block(StripeId(0), 1);
    let transport = ChannelTransport::new();
    let config = ManagerConfig::default().with_workers(1);
    let report = run_batch(
        &mut coordinator,
        &cluster,
        &transport,
        &config,
        vec![RepairRequest {
            stripe: StripeId(0),
            failed: 0,
            requestor: 13,
            priority: RepairPriority::DegradedRead,
        }],
    )
    .unwrap();
    assert_eq!(report.blocks_repaired, 1);
    assert_eq!(report.replans, 1);
    assert_eq!(report.outcomes[0].replans, 1);
    assert_eq!(
        cluster.store(13).get(BlockId::new(0, 0)).unwrap(),
        expected_block(&originals, BlockId::new(0, 0)),
    );
}

/// A node that dies without being reported is detected through its failed
/// helper reads, declared dead, and its stripes auto-recovered.
#[test]
fn daemon_detects_and_recovers_a_silently_dead_node() {
    let (coordinator, cluster, originals) = build_cluster();
    let silent = 3usize;
    let lost = cluster.kill_node(silent);
    assert!(!lost.is_empty());
    // One worker keeps the scenario deterministic; `relocate_on_success`
    // matters here: once the degraded read rebuilds s1b0 onto a requestor,
    // later repairs of stripe 1 must find the relocated copy instead of
    // striking healthy node 1 for a block that legitimately moved.
    let config = ManagerConfig {
        workers: 1,
        dead_after_misses: 1,
        auto_requestors: vec![12, 13],
        relocate_on_success: true,
        ..ManagerConfig::default()
    };
    let manager = RepairManager::start(coordinator, cluster, ChannelTransport::new(), config);
    assert_eq!(manager.node_health(silent), NodeHealth::Alive);
    // Stripe 1 keeps block 2 on node 3: any repair of stripe 1 will try to
    // read it, miss, and tip the liveness view over.
    manager.cluster().erase_block(StripeId(1), 0);
    assert!(manager.degraded_read(StripeId(1), 0, 12).unwrap());
    manager.wait_idle();
    assert_eq!(manager.node_health(silent), NodeHealth::Dead);
    for &block in &lost {
        let expected = expected_block(&originals, block);
        let found = REQUESTORS
            .iter()
            .any(|&r| matches!(manager.cluster().store(r).get(block), Ok(b) if b == expected));
        assert!(found, "block {block} of the silent node not auto-recovered");
    }
    // No healthy node must have been declared dead along the way (the
    // degraded-read block moved to a requestor; repairs of its stripe must
    // follow the relocation instead of striking the old holder).
    assert_eq!(manager.node_health(1), NodeHealth::Alive);
    let report = manager.shutdown();
    assert_eq!(report.failed_repairs, 0);
    assert_eq!(report.blocks_repaired, 1 + lost.len());
    assert!(report.replans >= 1, "the tripping repair was re-planned");
}
