//! Transport conformance suite: every backend must provide the same
//! semantics to the repair executors.
//!
//! Each case is written once, generically over the [`Transport`] trait, and
//! instantiated for [`ChannelTransport`] (in-process channels),
//! [`TcpTransport`] (real localhost sockets, a thread per connection) and
//! [`ReactorTransport`] (the same sockets multiplexed over a fixed epoll
//! thread pool): slice ordering, backpressure
//! at [`PIPELINE_DEPTH`], dropped-peer error propagation, the paper's
//! one-block-per-link traffic claim, and byte-exact repairs under all four
//! execution strategies. A TCP-only case measures the §3.2 timing claim
//! (repair time ≈ `1 + (k-1)/s` timeslots) on throttled sockets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use std::sync::Arc;

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::stripe::StripeId;
use repair_pipelining::ecc::{ErasureCode, ReedSolomon};
use repair_pipelining::ecpipe::exec::{
    execute_multi, execute_single, ExecStrategy, PIPELINE_DEPTH,
};
use repair_pipelining::ecpipe::transport::{
    ChannelTransport, ReactorTransport, SliceMsg, TcpTransport, Transport,
};
use repair_pipelining::ecpipe::{Cluster, Coordinator, SelectionPolicy, StoreBackend};

const BLOCK: usize = 16 * 1024;
const SLICE: usize = 2 * 1024;

fn stripe_data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..BLOCK)
                .map(|b| ((b as u64 * 131 + i as u64 * 17 + 5) % 253) as u8)
                .collect()
        })
        .collect()
}

fn setup(code: Arc<dyn ErasureCode>) -> (Cluster, Coordinator, Vec<Vec<u8>>, StripeId) {
    let k = code.k();
    let n = code.n();
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory(n + 2)).unwrap();
    let data = stripe_data(k);
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    (cluster, coordinator, data, stripe)
}

fn case_slices_arrive_in_order<T: Transport>(transport: &T) {
    let (tx, rx) = transport.link(0, 1, 4);
    let payloads: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i; 64 + i as usize]).collect();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for (j, p) in payloads.iter().enumerate() {
                tx.send(SliceMsg::new(j, p.clone().into()).tagged(9, 2))
                    .unwrap();
            }
        });
        for (j, p) in payloads.iter().enumerate() {
            let msg = rx.recv().expect("stream ended early");
            assert_eq!(msg.index, j, "slices must arrive in send order");
            assert_eq!((msg.stripe, msg.repair), (9, 2), "tags travel with slices");
            assert_eq!(msg.data, *p);
        }
    });
    drop(tx);
    assert!(
        rx.recv().is_none(),
        "stream must end after the sender drops"
    );
}

fn case_backpressure_at_pipeline_depth<T: Transport>(transport: &T) {
    let (tx, rx) = transport.link(0, 1, PIPELINE_DEPTH);
    let sent = AtomicUsize::new(0);
    let total = PIPELINE_DEPTH + 4;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for j in 0..total {
                tx.send(SliceMsg::new(j, vec![0u8; 128].into())).unwrap();
                sent.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Give the sender ample time to run ahead: it must stall after
        // exactly PIPELINE_DEPTH un-consumed slices.
        let deadline = Instant::now() + Duration::from_secs(5);
        while sent.load(Ordering::SeqCst) < PIPELINE_DEPTH && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(
            sent.load(Ordering::SeqCst),
            PIPELINE_DEPTH,
            "sender must block once PIPELINE_DEPTH slices are in flight"
        );
        for j in 0..total {
            assert_eq!(rx.recv().expect("stream ended early").index, j);
        }
    });
}

fn case_dropped_receiver_fails_sender<T: Transport>(transport: &T) {
    let (tx, rx) = transport.link(0, 1, 2);
    drop(rx);
    assert!(
        tx.send(SliceMsg::new(0, vec![1u8; 16].into())).is_err(),
        "sending to a dropped peer must error, not truncate silently"
    );
}

fn case_dropped_sender_ends_stream<T: Transport>(transport: &T) {
    let (tx, rx) = transport.link(3, 4, 4);
    tx.send(SliceMsg::new(0, vec![7u8; 32].into())).unwrap();
    tx.send(SliceMsg::new(1, vec![8u8; 32].into())).unwrap();
    drop(tx);
    assert_eq!(rx.recv().unwrap().index, 0);
    assert_eq!(rx.recv().unwrap().index, 1);
    assert!(rx.recv().is_none(), "drained stream must end cleanly");
}

fn case_one_block_per_link_accounting<T: Transport>(transport: &T) {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(14, 10).unwrap());
    let (cluster, mut coordinator, data, stripe) = setup(code);
    cluster.erase_block(stripe, 0);
    let directive = coordinator
        .plan_single_repair(stripe, 0, 15, &[], SelectionPolicy::CodeDefault)
        .unwrap();
    let repaired = execute_single(
        &directive,
        &cluster,
        transport,
        ExecStrategy::RepairPipelining,
    )
    .unwrap();
    assert_eq!(repaired, data[0]);
    // §3.2: repair pipelining puts exactly one block on every link it uses.
    assert_eq!(transport.links_used(), 10);
    assert_eq!(transport.total_bytes(), 10 * BLOCK as u64);
    assert_eq!(transport.max_link_bytes(), BLOCK as u64);
    for window in directive.path.windows(2) {
        assert_eq!(transport.link_bytes(window[0].0, window[1].0), BLOCK as u64);
    }
}

fn case_all_strategies_byte_exact<T: Transport>(transport: &T) {
    for strategy in [
        ExecStrategy::Conventional,
        ExecStrategy::Ppr,
        ExecStrategy::RepairPipelining,
        ExecStrategy::BlockPipeline,
    ] {
        let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(14, 10).unwrap());
        let (cluster, mut coordinator, data, stripe) = setup(code);
        cluster.erase_block(stripe, 3);
        let directive = coordinator
            .plan_single_repair(stripe, 3, 15, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        let repaired = execute_single(&directive, &cluster, transport, strategy).unwrap();
        assert_eq!(repaired, data[3], "strategy {:?}", strategy);
    }
}

fn case_multi_repair_byte_exact<T: Transport>(transport: &T) {
    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(9, 6).unwrap());
    let (cluster, mut coordinator, data, stripe) = setup(code.clone());
    let coded = code.encode(&data).unwrap();
    for &f in &[1usize, 7] {
        cluster.erase_block(stripe, f);
    }
    let directive = coordinator
        .plan_multi_repair(stripe, &[1, 7], &[9, 10])
        .unwrap();
    let repaired = execute_multi(&directive, &cluster, transport).unwrap();
    for (j, &f) in directive.plan.failed.iter().enumerate() {
        assert_eq!(repaired[j], coded[f], "failed block {f}");
    }
}

macro_rules! conformance_suite {
    ($backend:ident, $make:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn slices_arrive_in_order() {
                case_slices_arrive_in_order(&$make);
            }

            #[test]
            fn backpressure_at_pipeline_depth() {
                case_backpressure_at_pipeline_depth(&$make);
            }

            #[test]
            fn dropped_receiver_fails_sender() {
                case_dropped_receiver_fails_sender(&$make);
            }

            #[test]
            fn dropped_sender_ends_stream() {
                case_dropped_sender_ends_stream(&$make);
            }

            #[test]
            fn one_block_per_link_accounting() {
                case_one_block_per_link_accounting(&$make);
            }

            #[test]
            fn all_strategies_byte_exact() {
                case_all_strategies_byte_exact(&$make);
            }

            #[test]
            fn multi_repair_byte_exact() {
                case_multi_repair_byte_exact(&$make);
            }
        }
    };
}

conformance_suite!(channel, ChannelTransport::new());
conformance_suite!(tcp, TcpTransport::new());
conformance_suite!(reactor, ReactorTransport::new());

/// §3.2 on real sockets: with every link throttled to the same rate, a
/// repair-pipelined block takes about `1 + (k-1)/s` timeslots (one timeslot
/// = one block over one link), while block-level pipelining (`Pipe-B`)
/// needs about `k` timeslots. Bounds are generous so a loaded CI machine
/// doesn't flake, but tight enough to separate ~1.2 timeslots from ~4.
#[test]
fn throttled_tcp_matches_paper_timing_shape() {
    const RATE: u64 = 1024 * 1024; // 1 MiB/s per link
    const TBLOCK: usize = 256 * 1024;
    const TSLICE: usize = 16 * 1024; // s = 16 slices
    let k = 4;
    let timeslot = TBLOCK as f64 / RATE as f64; // ≈ 0.25 s

    let code: Arc<dyn ErasureCode> = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let mut coordinator = Coordinator::new(code, SliceLayout::new(TBLOCK, TSLICE));
    let cluster = Cluster::new(StoreBackend::memory(8)).unwrap();
    let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8 + 1; TBLOCK]).collect();
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    cluster.erase_block(stripe, 2);
    let directive = coordinator
        .plan_single_repair(stripe, 2, 7, &[], SelectionPolicy::CodeDefault)
        .unwrap();

    let rp_transport = TcpTransport::with_rate_limit(RATE);
    let start = Instant::now();
    let repaired = execute_single(
        &directive,
        &cluster,
        &rp_transport,
        ExecStrategy::RepairPipelining,
    )
    .unwrap();
    let rp_elapsed = start.elapsed().as_secs_f64();
    assert_eq!(repaired, data[2]);

    let pipe_b_transport = TcpTransport::with_rate_limit(RATE);
    let start = Instant::now();
    execute_single(
        &directive,
        &cluster,
        &pipe_b_transport,
        ExecStrategy::BlockPipeline,
    )
    .unwrap();
    let pipe_b_elapsed = start.elapsed().as_secs_f64();

    let s = (TBLOCK / TSLICE) as f64;
    let rp_ideal = (1.0 + (k as f64 - 1.0) / s) * timeslot; // ≈ 0.30 s
    assert!(
        rp_elapsed > 0.5 * rp_ideal,
        "throttle not engaged: rp {rp_elapsed:.3}s vs ideal {rp_ideal:.3}s"
    );
    assert!(
        rp_elapsed < 2.5 * rp_ideal,
        "rp far above the 1 + (k-1)/s prediction: {rp_elapsed:.3}s vs ideal {rp_ideal:.3}s"
    );
    // Pipe-B relays whole blocks hop by hop: ~k timeslots, well above RP.
    assert!(
        pipe_b_elapsed > 1.8 * rp_elapsed,
        "pipe-b {pipe_b_elapsed:.3}s should be far slower than rp {rp_elapsed:.3}s"
    );
}
