//! Integrity conformance suite: silent bit-rot is detected, repaired and
//! re-verified — and never poisons a repair — on both transport backends.
//!
//! Generic cases instantiated for [`ChannelTransport`], [`TcpTransport`]
//! and [`ReactorTransport`]:
//! a scrub cycle over a checksummed cluster finds injected corruption,
//! auto-enqueues corruption-class repairs, heals the blocks byte-exact in
//! place and re-verifies them; a helper serving a corrupt slice mid-stream
//! fails the repair cleanly (the executor surfaces `CorruptBlock`, not a
//! generic stream error), the manager re-plans around the rotten block
//! without a liveness strike, and the rot itself is auto-healed. Channel-only
//! cases pin the scheduling and pacing: corruption repairs pop between
//! degraded reads and background recovery, the scrubber's token bucket
//! actually paces the scan, and a file-backed store with persisted `.crc`
//! sidecars survives on-disk tampering end to end.

use std::sync::Arc;
use std::time::{Duration, Instant};

use repair_pipelining::ecc::slice::SliceLayout;
use repair_pipelining::ecc::stripe::{BlockId, StripeId};
use repair_pipelining::ecc::{ErasureCode, ReedSolomon};
use repair_pipelining::ecpipe::exec::execute_single;
use repair_pipelining::ecpipe::manager::{
    run_batch, ManagerConfig, NodeHealth, RepairManager, RepairPriority, RepairRequest, ScrubConfig,
};
use repair_pipelining::ecpipe::transport::{
    ChannelTransport, ReactorTransport, TcpTransport, Transport,
};
use repair_pipelining::ecpipe::{
    BlockStore, Cluster, Coordinator, EcPipeError, ExecStrategy, FileStore, SelectionPolicy,
    StoreBackend,
};

const BLOCK: usize = 16 * 1024;
const SLICE: usize = 2 * 1024;
/// Stripes live on nodes `0..12`; nodes 12 and 13 are replacement
/// requestors holding no stripe blocks.
const STORAGE_NODES: usize = 12;
const NODES: usize = 14;
const STRIPES: u64 = 24;

/// A 14-node cluster of checksum-verifying stores holding 24 (6,4) stripes.
fn build_cluster() -> (Coordinator, Cluster, Vec<Vec<Vec<u8>>>) {
    let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory_checksummed(NODES)).unwrap();
    let mut originals = Vec::new();
    for s in 0..STRIPES {
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..BLOCK)
                    .map(|b| ((b as u64 * 31 + i as u64 * 7 + s * 13) % 251) as u8)
                    .collect()
            })
            .collect();
        let placement: Vec<usize> = (0..6).map(|i| (s as usize + i) % STORAGE_NODES).collect();
        cluster
            .write_stripe_with_placement(&mut coordinator, s, &data, placement)
            .unwrap();
        originals.push(data);
    }
    (coordinator, cluster, originals)
}

/// The expected content of `block`: the original data, or a fresh re-encode
/// for parity indices.
fn expected_block(originals: &[Vec<Vec<u8>>], block: BlockId) -> Vec<u8> {
    let code = ReedSolomon::new(6, 4).unwrap();
    let data = &originals[block.stripe.0 as usize];
    if block.index < 4 {
        data[block.index].clone()
    } else {
        code.encode(data).unwrap()[block.index].clone()
    }
}

/// Injected corruption on three helpers is detected by a scrub cycle,
/// auto-enqueued as corruption-class repairs, healed byte-exact in place,
/// and re-verified — all folded into the manager report.
fn case_scrub_detects_repairs_and_reverifies<T: Transport + Send + Sync + 'static>(transport: T) {
    let (coordinator, cluster, originals) = build_cluster();
    // Three rotten blocks on three different healthy nodes.
    let rotten = [(2u64, 1usize), (7, 0), (11, 3)];
    for &(s, i) in &rotten {
        cluster.corrupt_block(StripeId(s), i, BLOCK / 3).unwrap();
        assert!(matches!(
            cluster.verify_block(StripeId(s), i),
            Err(EcPipeError::CorruptBlock { .. })
        ));
    }
    let config = ManagerConfig {
        workers: 2,
        relocate_on_success: true,
        ..ManagerConfig::default()
    };
    let manager = RepairManager::start(coordinator, cluster, transport, config);

    let cycle = manager.scrub(&ScrubConfig::default());
    assert_eq!(cycle.blocks_scanned, (STRIPES as usize) * 6);
    assert_eq!(
        cycle.bytes_scanned,
        ((STRIPES as usize) * 6 - rotten.len()) as u64 * BLOCK as u64,
        "corrupt blocks contribute no verified bytes"
    );
    assert_eq!(cycle.corrupt.len(), rotten.len());
    for &(s, i) in &rotten {
        assert!(cycle.corrupt.contains(&BlockId::new(s, i)));
    }
    assert_eq!(cycle.repairs_enqueued, rotten.len());
    assert_eq!(cycle.reverified_clean, rotten.len());
    assert!(cycle.still_corrupt.is_empty(), "{:?}", cycle.still_corrupt);

    // Healed in place, byte-exact, and verifiable again.
    for &(s, i) in &rotten {
        assert!(manager.cluster().verify_block(StripeId(s), i).is_ok());
        assert_eq!(
            manager.cluster().read_block(StripeId(s), i).unwrap(),
            expected_block(&originals, BlockId::new(s, i)),
            "block s{s}b{i} not healed byte-exact"
        );
    }

    // A second cycle finds nothing left to fix.
    let second = manager.scrub(&ScrubConfig::default());
    assert!(second.corrupt.is_empty());
    assert_eq!(second.repairs_enqueued, 0);

    let report = manager.shutdown();
    assert_eq!(report.blocks_repaired, rotten.len());
    assert_eq!(report.failed_repairs, 0);
    assert_eq!(report.corruption_wait.count, rotten.len());
    assert_eq!(report.scrub_cycles.len(), 2);
    assert_eq!(report.blocks_scrubbed(), 2 * (STRIPES as usize) * 6);
    assert_eq!(report.corruption_detected(), rotten.len());
}

/// A helper that reads a corrupt local slice mid-stream fails the repair
/// cleanly: the degraded read is re-planned around the rotten block (no
/// liveness strike — the node is healthy), reconstructs byte-exact (no
/// poisoned partials reach the requestor), and the rot itself is
/// auto-enqueued and healed in place.
fn case_corrupt_helper_replans_and_autoheals<T: Transport + Send + Sync + 'static>(transport: T) {
    let (coordinator, cluster, originals) = build_cluster();
    // Stripe 0 lives on nodes 0..=5. Erase block 0 and rot block 1 — the
    // first LRU plan picks helpers {1, 2, 3, 4}, so the repair must trip
    // over the corruption mid-stream.
    cluster.erase_block(StripeId(0), 0);
    cluster.corrupt_block(StripeId(0), 1, BLOCK / 2).unwrap();
    let config = ManagerConfig {
        workers: 1,
        relocate_on_success: true,
        ..ManagerConfig::default()
    };
    let manager = RepairManager::start(coordinator, cluster, transport, config);
    assert!(manager.degraded_read(StripeId(0), 0, 13).unwrap());
    manager.wait_idle();

    // The degraded read landed byte-exact despite the corrupt helper.
    assert_eq!(
        manager.cluster().store(13).get(BlockId::new(0, 0)).unwrap(),
        expected_block(&originals, BlockId::new(0, 0)),
    );
    // Corruption is not node death: node 1 took no strike...
    assert_eq!(manager.node_health(1), NodeHealth::Alive);
    // ...but its rotten block was auto-repaired in place and verifies.
    assert!(manager.cluster().verify_block(StripeId(0), 1).is_ok());
    assert_eq!(
        manager.cluster().read_block(StripeId(0), 1).unwrap(),
        expected_block(&originals, BlockId::new(0, 1)),
    );

    let report = manager.shutdown();
    assert_eq!(report.blocks_repaired, 2, "degraded read + corruption heal");
    assert_eq!(report.failed_repairs, 0);
    assert_eq!(report.replans, 1, "one re-plan around the rotten helper");
    assert_eq!(report.corruption_wait.count, 1);
    assert_eq!(report.degraded_wait.count, 1);
}

/// The executor surfaces `CorruptBlock` naming the rotten helper block — not
/// a generic stream error — under every strategy, so callers can re-plan
/// around the actual culprit.
fn case_exec_surfaces_corrupt_block<T: Transport + Send + Sync>(transport: &T) {
    for strategy in [
        ExecStrategy::Conventional,
        ExecStrategy::Ppr,
        ExecStrategy::RepairPipelining,
        ExecStrategy::BlockPipeline,
    ] {
        let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
        let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
        let cluster = Cluster::new(StoreBackend::memory_checksummed(8)).unwrap();
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| (0..BLOCK).map(|b| ((b * 7 + i * 31) % 250) as u8).collect())
            .collect();
        let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
        cluster.erase_block(stripe, 2);
        let directive = coordinator
            .plan_single_repair(stripe, 2, 7, &[], SelectionPolicy::CodeDefault)
            .unwrap();
        // Rot one of the helpers the plan uses (block 1 is always in the
        // CodeDefault helper set {0, 1, 3, 4}).
        cluster.corrupt_block(stripe, 1, BLOCK - 1).unwrap();
        let result = execute_single(&directive, &cluster, transport, strategy);
        match result {
            Err(EcPipeError::CorruptBlock { block, .. }) => {
                assert_eq!(block, BlockId::new(0, 1), "strategy {strategy:?}")
            }
            other => panic!("strategy {strategy:?}: expected CorruptBlock, got {other:?}"),
        }
    }
}

macro_rules! integrity_suite {
    ($backend:ident, $make:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn scrub_detects_repairs_and_reverifies() {
                case_scrub_detects_repairs_and_reverifies($make);
            }

            #[test]
            fn corrupt_helper_replans_and_autoheals() {
                case_corrupt_helper_replans_and_autoheals($make);
            }

            #[test]
            fn exec_surfaces_corrupt_block() {
                case_exec_surfaces_corrupt_block(&$make);
            }
        }
    };
}

integrity_suite!(channel, ChannelTransport::new());
integrity_suite!(tcp, TcpTransport::new());
integrity_suite!(reactor, ReactorTransport::new());

/// Corruption repairs pop between degraded reads and background recovery
/// (single worker makes the completion order fully deterministic).
#[test]
fn corruption_priority_sits_between_degraded_and_background() {
    let (mut coordinator, cluster, originals) = build_cluster();
    let mut requests = Vec::new();
    for s in 0..4u64 {
        cluster.erase_block(StripeId(s), 0);
        requests.push(RepairRequest {
            stripe: StripeId(s),
            failed: 0,
            requestor: 12,
            priority: RepairPriority::Background,
        });
    }
    for s in 4..6u64 {
        // The corrupt copy stays on its node; the repair overwrites it.
        cluster.corrupt_block(StripeId(s), 1, 99).unwrap();
        let holder = (s as usize + 1) % STORAGE_NODES;
        requests.push(RepairRequest {
            stripe: StripeId(s),
            failed: 1,
            requestor: holder,
            priority: RepairPriority::Corruption,
        });
    }
    for s in 6..8u64 {
        cluster.erase_block(StripeId(s), 2);
        requests.push(RepairRequest {
            stripe: StripeId(s),
            failed: 2,
            requestor: 13,
            priority: RepairPriority::DegradedRead,
        });
    }
    let transport = ChannelTransport::new();
    let config = ManagerConfig::default().with_workers(1);
    let report = run_batch(&mut coordinator, &cluster, &transport, &config, requests).unwrap();
    assert_eq!(report.blocks_repaired, 8);
    let seq_of = |p: RepairPriority| {
        report
            .outcomes
            .iter()
            .filter(|o| o.priority == p)
            .map(|o| o.finished_seq)
            .collect::<Vec<_>>()
    };
    let degraded = seq_of(RepairPriority::DegradedRead);
    let corruption = seq_of(RepairPriority::Corruption);
    let background = seq_of(RepairPriority::Background);
    assert!(
        degraded.iter().max() < corruption.iter().min(),
        "degraded {degraded:?} must finish before corruption {corruption:?}"
    );
    assert!(
        corruption.iter().max() < background.iter().min(),
        "corruption {corruption:?} must finish before background {background:?}"
    );
    // The corrupt copies were overwritten in place with the true bytes.
    for s in 4..6u64 {
        assert!(cluster.verify_block(StripeId(s), 1).is_ok());
        assert_eq!(
            cluster.read_block(StripeId(s), 1).unwrap(),
            expected_block(&originals, BlockId::new(s, 1)),
        );
    }
    assert_eq!(report.corruption_wait.count, 2);
}

/// The scrubber's token bucket actually paces the scan: verifying ~1.5 MiB
/// at 4 MiB/s must take a measurable fraction of a second, while an unpaced
/// cycle over the same data is far faster.
#[test]
fn scrub_pacing_throttles_the_scan() {
    let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::memory_checksummed(8)).unwrap();
    let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; BLOCK]).collect();
    for s in 0..16u64 {
        cluster.write_stripe(&mut coordinator, s, &data).unwrap();
    }
    let manager = RepairManager::start(
        coordinator,
        cluster,
        ChannelTransport::new(),
        ManagerConfig::default(),
    );
    let total_bytes = 16 * 6 * BLOCK as u64; // 1.5 MiB

    let start = Instant::now();
    let unpaced = manager.scrub(&ScrubConfig::default());
    let unpaced_elapsed = start.elapsed();
    assert_eq!(unpaced.bytes_scanned, total_bytes);

    let rate = 4 * 1024 * 1024;
    let start = Instant::now();
    let paced = manager.scrub(&ScrubConfig::default().with_rate(rate));
    let paced_elapsed = start.elapsed();
    assert_eq!(paced.bytes_scanned, total_bytes);
    // 1.5 MiB at 4 MiB/s is ~375 ms of token-bucket time; allow slack for
    // the initial burst and scheduling, but far above the unpaced cycle.
    let floor = Duration::from_millis(200);
    assert!(
        paced_elapsed >= floor,
        "paced scrub finished in {paced_elapsed:?}, throttle not engaged"
    );
    assert!(
        paced_elapsed > unpaced_elapsed,
        "paced {paced_elapsed:?} should exceed unpaced {unpaced_elapsed:?}"
    );
    manager.shutdown();
}

/// End to end on disk: a file-backed cluster with persisted `.crc` sidecars
/// detects bytes tampered directly in a block file, heals them through a
/// scrub, and leaves the on-disk block byte-exact and verifiable.
#[test]
fn file_backed_scrub_survives_on_disk_tampering() {
    let root = std::env::temp_dir().join(format!("ecpipe-disk-scrub-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let stores: Vec<Arc<dyn BlockStore>> = (0..8)
        .map(|n| {
            Arc::new(FileStore::open_checksummed(root.join(format!("node{n}"))).unwrap())
                as Arc<dyn BlockStore>
        })
        .collect();
    let code = Arc::new(ReedSolomon::new(6, 4).unwrap());
    let mut coordinator = Coordinator::new(code, SliceLayout::new(BLOCK, SLICE));
    let cluster = Cluster::new(StoreBackend::custom(stores)).unwrap();
    let data: Vec<Vec<u8>> = (0..4)
        .map(|i| (0..BLOCK).map(|b| ((b * 13 + i * 7) % 240) as u8).collect())
        .collect();
    let stripe = cluster.write_stripe(&mut coordinator, 0, &data).unwrap();
    let victim_node = cluster.placement(stripe).unwrap()[1];

    // Tamper with the block file behind the store's back, as bit-rot would.
    let path = root.join(format!("node{victim_node}")).join("s0b1");
    let mut raw = std::fs::read(&path).unwrap();
    raw[5000] ^= 0x40;
    std::fs::write(&path, &raw).unwrap();
    assert!(matches!(
        cluster.verify_block(stripe, 1),
        Err(EcPipeError::CorruptBlock { .. })
    ));

    let manager = RepairManager::start(
        coordinator,
        cluster,
        ChannelTransport::new(),
        ManagerConfig::default(),
    );
    let cycle = manager.scrub(&ScrubConfig::default());
    assert_eq!(cycle.corrupt, vec![BlockId::new(0, 1)]);
    assert_eq!(cycle.reverified_clean, 1);
    assert!(cycle.still_corrupt.is_empty());
    manager.shutdown();

    // The on-disk bytes are the true ones again, and a *fresh* store
    // (reloading the sidecar) agrees they verify.
    assert_eq!(std::fs::read(&path).unwrap(), data[1]);
    let reopened = FileStore::open_checksummed(root.join(format!("node{victim_node}"))).unwrap();
    assert!(reopened.verify(BlockId::new(0, 1)).is_ok());
    std::fs::remove_dir_all(&root).ok();
}
