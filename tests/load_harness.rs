//! Acceptance for the open-loop load harness over the reactor transport:
//! a burst that puts well over a thousand ops in flight completes on a
//! fixed thread budget (the epoll pool, not a thread per connection), and
//! the report carries usable tail percentiles.

use std::time::Duration;

use ecpipe_loadgen::{HarnessConfig, WorkloadMix};
use repair_pipelining::ecpipe::{EcPipeBuilder, TransportChoice};

fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs is available on the linux CI runners")
        .count()
}

#[test]
fn reactor_harness_sustains_a_thousand_in_flight_ops_on_fixed_threads() {
    let pipe = EcPipeBuilder::new()
        .code(4, 2)
        .block_size(8 * 1024)
        .slice_size(1024)
        .transport(TransportChoice::Reactor)
        .build()
        .expect("reactor-backed façade builds");

    // Warm-up: touch every node pair the mix will use, so the steady-state
    // thread count (manager daemons + reactor pool + cached connections)
    // is established before the measurement.
    let warmup = HarnessConfig {
        rate: 300.0,
        duration: Duration::from_millis(300),
        workers: 8,
        objects: 12,
        object_size: 8 * 1024,
        mix: WorkloadMix {
            put: 5,
            get: 90,
            degraded: 5,
        },
        ..HarnessConfig::default()
    };
    let warm_report = ecpipe_loadgen::run(&pipe, &warmup).expect("warm-up run");
    assert!(warm_report.overall.ops > 0);
    let threads_before = os_thread_count();

    // The burst: offered load far beyond what the workers can absorb, so
    // the open-loop queue deepens past 1000 within the burst window. The
    // preloaded population already exists; reuse it via the same seed-free
    // object naming by keeping `objects` equal.
    let burst = HarnessConfig {
        rate: 40_000.0,
        duration: Duration::from_millis(150),
        ..warmup.clone()
    };
    // Re-running preloads the same `lg-*` names; drop them first so the
    // second run's puts do not collide.
    for i in 0..warmup.objects {
        let _ = pipe.delete(&format!("lg-{i}"));
    }
    let report = ecpipe_loadgen::run(&pipe, &burst).expect("burst run");
    let threads_after = os_thread_count();

    assert!(
        report.peak_in_flight >= 1_000,
        "burst never built a deep queue: peak {} in flight\n{}",
        report.peak_in_flight,
        report.render()
    );
    assert!(
        report.overall.ops as usize >= report.peak_in_flight,
        "completed {} ops but peaked at {}",
        report.overall.ops,
        report.peak_in_flight
    );
    // Percentiles must be real measurements, ordered and positive.
    assert!(report.overall.p50_ns > 0, "{}", report.render());
    assert!(report.overall.p99_ns >= report.overall.p50_ns);
    assert!(report.overall.p999_ns >= report.overall.p99_ns);
    // The whole burst ran on the threads that already existed: multiplexed
    // connections on the fixed reactor pool, no thread-per-connection or
    // thread-per-op growth. (Harness workers are scoped and joined before
    // the count is taken.)
    assert!(
        threads_after <= threads_before,
        "thread count grew under load: {threads_before} -> {threads_after}"
    );
    pipe.shutdown();
}
