//! Transport shutdown and backpressure edge cases, parameterized over all
//! three backends ([`ChannelTransport`], [`TcpTransport`],
//! [`ReactorTransport`]).
//!
//! The conformance suite pins the happy paths; this file pins the ugly
//! ones: tearing a transport down while frames are still queued, credit
//! replenishment under a deliberately slow receiver, and opening fresh
//! links on a pair whose previous links (or, for the reactor, whose
//! underlying connection) went away.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use repair_pipelining::ecpipe::transport::{
    ChannelTransport, ReactorTransport, SliceMsg, TcpTransport, Transport,
};

/// Runs `f` on a helper thread and fails the test if it has not finished
/// within `dur` — the shape every "must not hang" assertion here takes.
fn finishes_within<F>(what: &str, dur: Duration, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = done_tx.send(());
    });
    if done_rx.recv_timeout(dur).is_err() {
        panic!("{what} did not finish within {dur:?}");
    }
}

/// Dropping the transport with frames still queued on a link must leave the
/// receiver with a terminating stream — whatever was already delivered may
/// drain, but `recv` must reach end-of-stream instead of hanging.
fn case_shutdown_with_inflight_frames<T: Transport + Send + 'static>(transport: T) {
    let (tx, rx) = transport.link(0, 1, 64);
    for j in 0..32 {
        tx.send(SliceMsg::new(j, vec![j as u8; 512].into()))
            .expect("queueing ahead of any shutdown");
    }
    drop(tx);
    drop(transport);
    finishes_within(
        "draining a shut-down transport's link",
        Duration::from_secs(10),
        move || {
            let mut drained = 0usize;
            while rx.recv().is_some() {
                drained += 1;
            }
            assert!(drained <= 32, "conjured {drained} frames out of 32 sent");
        },
    );
}

/// With the receiver consuming one frame at a time, the sender must stay
/// inside the credit window the whole way: after `j` frames have been
/// consumed, at most `credits + j` may ever have left the sender.
fn case_credit_exhaustion_under_slow_receiver<T: Transport>(transport: &T) {
    const CREDITS: usize = 4;
    const TOTAL: usize = 24;
    let (tx, rx) = transport.link(2, 3, CREDITS);
    let sent = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for j in 0..TOTAL {
                tx.send(SliceMsg::new(j, vec![0u8; 256].into()))
                    .expect("receiver lives for the whole run");
                sent.fetch_add(1, Ordering::SeqCst);
            }
        });
        let wait_for_sent = |at_least: usize| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while sent.load(Ordering::SeqCst) < at_least && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        wait_for_sent(CREDITS);
        for consumed in 0..TOTAL {
            // Let the sender catch up to the newly granted credit, then
            // check it never overshot the window.
            wait_for_sent((CREDITS + consumed).min(TOTAL));
            std::thread::sleep(Duration::from_millis(5));
            let sent_now = sent.load(Ordering::SeqCst);
            assert!(
                sent_now <= CREDITS + consumed,
                "sender overran the credit window: {sent_now} sent after {consumed} consumed"
            );
            let msg = rx.recv().expect("stream ended early");
            assert_eq!(msg.index, consumed, "slow consumption must not reorder");
        }
    });
    drop(tx);
    assert!(rx.recv().is_none());
}

/// Link teardown on a pair must not poison the pair: fresh links opened
/// afterwards (over the same cached connection, for the socket backends)
/// carry traffic normally.
fn case_fresh_links_after_teardown<T: Transport>(transport: &T) {
    for round in 0..3u8 {
        let (tx, rx) = transport.link(4, 5, 8);
        tx.send(SliceMsg::new(round as usize, vec![round; 128].into()))
            .expect("fresh link must carry traffic");
        let msg = rx.recv().expect("fresh link must deliver");
        assert_eq!(msg.data, vec![round; 128]);
        // Tear down out of order across rounds: receiver first on even
        // rounds, sender first on odd.
        if round % 2 == 0 {
            drop(rx);
            assert!(tx.send(SliceMsg::new(9, vec![9u8; 8].into())).is_err());
        } else {
            drop(tx);
            assert!(rx.recv().is_none());
        }
    }
}

macro_rules! edge_suite {
    ($backend:ident, $make:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn shutdown_with_inflight_frames() {
                case_shutdown_with_inflight_frames($make);
            }

            #[test]
            fn credit_exhaustion_under_slow_receiver() {
                case_credit_exhaustion_under_slow_receiver(&$make);
            }

            #[test]
            fn fresh_links_after_teardown() {
                case_fresh_links_after_teardown(&$make);
            }
        }
    };
}

edge_suite!(channel, ChannelTransport::new());
edge_suite!(tcp, TcpTransport::new());
edge_suite!(reactor, ReactorTransport::new());

/// After the transport is dropped, surviving senders on the socket
/// backends must fail fast instead of buffering into a void.
#[test]
fn send_after_shutdown_errors_on_socket_backends() {
    fn check<T: Transport>(transport: T, label: &str) {
        let (tx, _rx) = transport.link(0, 1, 4);
        drop(transport);
        assert!(
            tx.send(SliceMsg::new(0, vec![1u8; 16].into())).is_err(),
            "{label}: send into a shut-down transport must error"
        );
    }
    check(TcpTransport::new(), "tcp");
    check(ReactorTransport::new(), "reactor");
}

/// A peer "restart" on the reactor backend: the cached connection to the
/// pair is severed, in-flight senders fail, and the next link transparently
/// reconnects and carries byte-exact traffic again.
#[test]
fn reactor_connection_reuse_survives_peer_restart() {
    let transport = ReactorTransport::new();
    let (tx, rx) = transport.link(0, 1, 8);
    tx.send(SliceMsg::new(0, vec![42u8; 1024].into()))
        .expect("pre-restart traffic flows");
    assert_eq!(rx.recv().expect("pre-restart delivery").data[0], 42);

    assert!(
        transport.disconnect_pair(0, 1),
        "there was a live connection to sever"
    );
    // The severed connection must surface as send errors, possibly after
    // the frames already buffered locally are flushed into the dead socket.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut failed = false;
    while Instant::now() < deadline {
        if tx.send(SliceMsg::new(1, vec![1u8; 1024].into())).is_err() {
            failed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(failed, "sends on a severed connection must start failing");
    drop((tx, rx));

    // A fresh link dials a fresh connection; the restart is invisible.
    let (tx, rx) = transport.link(0, 1, 8);
    tx.send(SliceMsg::new(7, vec![7u8; 2048].into()))
        .expect("post-restart traffic flows");
    let msg = rx.recv().expect("post-restart delivery");
    assert_eq!((msg.index, msg.data.len()), (7, 2048));
    assert_eq!(msg.data, vec![7u8; 2048]);
}
